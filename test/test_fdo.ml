(* Tests for the persistent FDO subsystem (lib/fdo + the pipeline's
   compile cache): store round-trips and the committed format golden,
   merge algebra (commutativity / associativity / identity) and decay,
   stale-profile matching on edited sources (sound: outputs always
   bit-identical to the unoptimized oracle), full-fidelity SIR
   serialization, the content-addressed cache (hit / miss / evict /
   corrupt-artifact recovery), and the "fdo" section of the
   [specpre-bench/2] schema. *)

open Spec_ir
open Spec_fdo
open Spec_driver

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* A small deterministic kernel exercising all three profile kinds:
   indirect references through a pointer (alias LOC sets), a call with a
   global side effect (call mod/ref), and branches (edge profile). *)
let base_src =
  "int A[50];\n\
   int B[50];\n\
   int g;\n\
   int bump(int k) { g = g + k; return g; }\n\
   int main() {\n\
  \  int i; int s; int* p;\n\
  \  s = 0;\n\
  \  for (i = 0; i < 50; i++) { A[i] = i; B[i] = 2 * i; }\n\
  \  p = &g;\n\
  \  *p = 5;\n\
  \  for (i = 0; i < 50; i++) {\n\
  \    if (i < 25) { s = s + A[i]; } else { s = s + B[i]; }\n\
  \    s = s + *p;\n\
  \  }\n\
  \  s = s + bump(3);\n\
  \  *p = *p + 1;\n\
  \  s = s + g;\n\
  \  print_int(s);\n\
  \  return 0;\n\
   }\n"

let store_of src =
  let prog, prof, _ = Pipeline.train src in
  (Store.of_profile prog prof, prog)

(* ---- textio ---- *)

let test_textio_roundtrip () =
  List.iter
    (fun s ->
      let lx = Textio.make (Textio.quote s ^ " tail") in
      check_str "quoted round trip" s (Textio.token lx);
      check_str "lexer continues" "tail" (Textio.token lx))
    [ ""; "plain"; "with space"; "q\"uote"; "back\\slash"; "new\nline";
      "tab\there"; "\x01\x7f\xff"; "mixed \"x\\y\"\n\t\x02" ]

(* ---- store round-trip and golden ---- *)

let test_store_roundtrip () =
  let store, _ = store_of base_src in
  let text = Store.write store in
  (match Store.read text with
   | Ok back ->
     check_bool "read(write(s)) == s" true (Store.equal store back);
     check_str "write is a fixpoint" text (Store.write back)
   | Error e -> Alcotest.fail ("store read failed: " ^ e));
  (match Store.check text with
   | Ok () -> ()
   | Error e -> Alcotest.fail ("store validate failed: " ^ e))

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* The committed golden pins the [specprof/1] byte format: regenerating
   the store from the same source must reproduce the file exactly, so
   any accidental format change (field order, quoting, sorting) fails
   here before it can corrupt persisted profiles in the field. *)
let test_store_golden () =
  let golden = read_file "golden.sprof" in
  let store, _ = store_of base_src in
  check_str "golden store bytes" golden (Store.write store);
  (match Store.check golden with
   | Ok () -> ()
   | Error e -> Alcotest.fail ("golden failed validation: " ^ e))

let test_store_rejects_drift () =
  let store, _ = store_of base_src in
  let text = Store.write store in
  (* version drift *)
  let wrong =
    "specprof/2" ^ String.sub text 10 (String.length text - 10)
  in
  (match Store.read wrong with
   | Ok _ -> Alcotest.fail "accepted unknown version"
   | Error _ -> ());
  (* structural drift: negative count *)
  (match Store.validate { store with Store.runs = -1 } with
   | Ok () -> Alcotest.fail "accepted negative run count"
   | Error _ -> ());
  (* trailing garbage *)
  (match Store.read (text ^ "\nextra") with
   | Ok _ -> Alcotest.fail "accepted trailing data"
   | Error _ -> ())

(* ---- merge algebra ---- *)

let test_merge_laws () =
  let a, _ = store_of base_src in
  (* a structurally different store: different source, different sites *)
  let b, _ =
    store_of
      "int g; int main() { int* p; p = &g; *p = 7; print_int(*p + g); \
       return 0; }"
  in
  let c = Store.merge a b in
  check_bool "commutative" true (Store.equal c (Store.merge b a));
  check_bool "associative" true
    (Store.equal
       (Store.merge (Store.merge a b) c)
       (Store.merge a (Store.merge b c)));
  check_bool "left identity" true (Store.equal a (Store.merge Store.empty a));
  check_bool "right identity" true
    (Store.equal a (Store.merge a Store.empty));
  check_int "runs add" (a.Store.runs + b.Store.runs) c.Store.runs;
  check_str "merge write deterministic" (Store.write c)
    (Store.write (Store.merge b a))

let total_counts (s : Store.t) =
  List.fold_left (fun acc (_, n) -> acc + n) 0 s.Store.entries
  + List.fold_left (fun acc (_, n) -> acc + n) 0 s.Store.edges
  + List.fold_left
      (fun acc (e : Store.site_entry) ->
        List.fold_left (fun acc (_, n) -> acc + n) (acc + e.Store.e_count)
          e.Store.e_locs)
      0 s.Store.sites

let test_decay () =
  let a, _ = store_of base_src in
  check_bool "decay 1.0 is identity" true
    (Store.equal a (Store.decay ~lambda:1.0 a));
  let half = Store.decay ~lambda:0.5 a in
  check_bool "decay shrinks counts" true
    (total_counts half <= total_counts a);
  let tiny = Store.decay ~lambda:0.001 a in
  check_bool "decay monotone" true (total_counts tiny <= total_counts half);
  (match Store.decay ~lambda:1.5 a with
   | _ -> Alcotest.fail "accepted lambda > 1"
   | exception Invalid_argument _ -> ());
  (* the intended usage pattern: old evidence decayed, fresh merged in *)
  let aged = Store.merge (Store.decay ~lambda:0.5 a) a in
  check_int "aged store counts runs" (2 * a.Store.runs) aged.Store.runs

(* ---- stale-profile matching: soundness on edited sources ---- *)

let interp_output prog =
  (Spec_prof.Interp.run prog).Spec_prof.Interp.output

let compile_with_store store src =
  let prog = Lower.compile src in
  let prof, mr = Store.bind store prog in
  let r =
    Pipeline.compile_and_optimize ~edge_profile:(Some prof) src
      (Pipeline.Spec_profile prof)
  in
  (r, mr)

(* Hand-listed source mutations, from cosmetic to structural.  For every
   one, compiling with the *old* profile must (a) report a match rate
   and (b) produce output bit-identical to the unoptimized oracle —
   unmatched evidence degrades to no-speculation, never to wrong
   code. *)
let mutations =
  [ ("comment only",
     "int A[50];\nint B[50];\nint g;\n"
     ^ "int bump(int k) { g = g + k; return g; }\n"
     ^ "int main() {\n  int i; int s; int* p;\n  s = 0;\n"
     ^ "  for (i = 0; i < 50; i++) { A[i] = i; B[i] = 2 * i; }\n"
     ^ "  p = &g;\n  *p = 5;\n"
     ^ "  for (i = 0; i < 50; i++) {\n"
     ^ "    if (i < 25) { s = s + A[i]; } else { s = s + B[i]; }\n"
     ^ "    s = s + *p;\n  }\n"
     ^ "  s = s + bump(3);\n  *p = *p + 1;\n  s = s + g;\n"
     ^ "  print_int(s);\n  return 0;\n}\n");
    ("extra statement",
     "int A[50];\nint B[50];\nint g;\n"
     ^ "int bump(int k) { g = g + k; return g; }\n"
     ^ "int main() {\n  int i; int s; int* p;\n  s = 0;\n"
     ^ "  for (i = 0; i < 50; i++) { A[i] = i; B[i] = 2 * i; }\n"
     ^ "  p = &g;\n  *p = 5;\n"
     ^ "  for (i = 0; i < 50; i++) {\n"
     ^ "    if (i < 25) { s = s + A[i]; } else { s = s + B[i]; }\n"
     ^ "    s = s + *p;\n  }\n"
     ^ "  s = s + 1;\n"
     ^ "  s = s + bump(3);\n  *p = *p + 1;\n  s = s + g;\n"
     ^ "  print_int(s);\n  return 0;\n}\n");
    ("renamed array",
     "int A[50];\nint C[50];\nint g;\n"
     ^ "int bump(int k) { g = g + k; return g; }\n"
     ^ "int main() {\n  int i; int s; int* p;\n  s = 0;\n"
     ^ "  for (i = 0; i < 50; i++) { A[i] = i; C[i] = 2 * i; }\n"
     ^ "  p = &g;\n  *p = 5;\n"
     ^ "  for (i = 0; i < 50; i++) {\n"
     ^ "    if (i < 25) { s = s + A[i]; } else { s = s + C[i]; }\n"
     ^ "    s = s + *p;\n  }\n"
     ^ "  s = s + bump(3);\n  *p = *p + 1;\n  s = s + g;\n"
     ^ "  print_int(s);\n  return 0;\n}\n");
    ("restructured main",
     "int A[50];\nint g;\n"
     ^ "int bump(int k) { g = g + k; return g; }\n"
     ^ "int main() {\n  int i; int s; int* p;\n  s = 0;\n"
     ^ "  p = &g;\n  *p = 2;\n"
     ^ "  for (i = 0; i < 30; i++) { A[i] = i; s = s + A[i] + *p; }\n"
     ^ "  s = s + bump(5);\n"
     ^ "  print_int(s);\n  return 0;\n}\n") ]

let test_stale_matching_sound () =
  let store, _ = store_of base_src in
  List.iter
    (fun (label, edited) ->
      let oracle = interp_output (Lower.compile edited) in
      let r, mr = compile_with_store store edited in
      let rate = Store.match_rate mr in
      check_bool (label ^ ": match rate in range") true
        (rate >= 0.0 && rate <= 1.0);
      check_str (label ^ ": output == unoptimized oracle") oracle
        (interp_output r.Pipeline.prog);
      ignore (Store.report_to_string mr : string))
    mutations;
  (* an unedited source must fully re-bind *)
  let _, mr = compile_with_store store base_src in
  check_bool "identical source matches fully" true
    (Store.match_rate mr = 1.0)

(* ---- merged profile == single-run profile decisions ---- *)

(* Merging two identical runs doubles every count, so the printed block
   frequencies double too; the speculation *decisions* (the code) must
   not change.  Blank out the digits after "freq " before comparing. *)
let strip_freqs s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if !i + 5 <= n && String.sub s !i 5 = "freq " then begin
      Buffer.add_string b "freq ";
      i := !i + 5;
      while
        !i < n && (match s.[!i] with '0' .. '9' | '.' -> true | _ -> false)
      do
        incr i
      done
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

let test_merge_same_decisions () =
  let store, _ = store_of base_src in
  let merged = Store.merge store store in
  check_int "merged counts two runs" 2 merged.Store.runs;
  let single, _ = compile_with_store store base_src in
  let doubled, _ = compile_with_store merged base_src in
  check_str "same speculation decisions"
    (strip_freqs (Pp.prog_to_string single.Pipeline.prog))
    (strip_freqs (Pp.prog_to_string doubled.Pipeline.prog));
  check_str "same outputs"
    (interp_output single.Pipeline.prog)
    (interp_output doubled.Pipeline.prog)

(* ---- sir_io: full-fidelity program serialization ---- *)

let test_sir_io_roundtrip () =
  let prog, prof, _ = Pipeline.train base_src in
  ignore (prog : Sir.prog);
  let r =
    Pipeline.compile_and_optimize ~edge_profile:(Some prof) base_src
      (Pipeline.Spec_profile prof)
  in
  let text = Sir_io.write r.Pipeline.prog in
  match Sir_io.read text with
  | Error e -> Alcotest.fail ("sir_io read failed: " ^ e)
  | Ok back ->
    check_str "pretty-printed programs identical"
      (Pp.prog_to_string r.Pipeline.prog)
      (Pp.prog_to_string back);
    check_str "deserialized program runs identically"
      (interp_output r.Pipeline.prog)
      (interp_output back);
    check_str "write is a fixpoint" text (Sir_io.write back)

(* ---- specsir/2: safety metadata (contracts + deopt descriptors) ---- *)

let cipher_src =
  Spec_workloads.Workloads.train_source
    (List.find
       (fun w -> w.Spec_workloads.Workloads.name = "cipher")
       Spec_workloads.Workloads.all)

let n_secret (p : Sir.prog) =
  let n = ref 0 in
  Symtab.iter (fun v -> if v.Symtab.vsecret then incr n) p.Sir.syms;
  !n

let test_sir_io_safety_roundtrip () =
  (* secret contract bits and deopt descriptors are compile inputs for
     the safety subsystem: a cache hit losing either would silently
     change verdicts or recovery, so the round trip must keep both *)
  let r =
    Pipeline.compile_and_optimize ~deopt:true cipher_src
      Pipeline.Spec_heuristic
  in
  let text = Sir_io.write r.Pipeline.prog in
  match Sir_io.read text with
  | Error e -> Alcotest.fail ("sir_io read failed: " ^ e)
  | Ok back ->
    check_bool "program carries secrets" true (n_secret r.Pipeline.prog > 0);
    check_int "secret bits preserved"
      (n_secret r.Pipeline.prog) (n_secret back);
    check_bool "program carries descriptors" true
      (Spec_safety.Deopt.count r.Pipeline.prog > 0);
    check_int "deopt descriptors preserved"
      (Spec_safety.Deopt.count r.Pipeline.prog)
      (Spec_safety.Deopt.count back);
    check_str "checker report identical on both sides"
      (Spec_safety.Spectct.to_string (Spec_safety.Taint.check r.Pipeline.prog))
      (Spec_safety.Spectct.to_string (Spec_safety.Taint.check back));
    check_str "write is a fixpoint" text (Sir_io.write back)

(* drop the [i]th whitespace token of [line]; safety metadata occupies
   fixed early fields, ahead of any quoted token, so this is exact *)
let drop_tok i line =
  String.split_on_char ' ' line
  |> List.filteri (fun j _ -> j <> i)
  |> String.concat " "

let test_sir_io_v1_degrades () =
  (* rebuild a [specsir/1] document from a /2 one: drop the version
     bump, every per-variable secret bit (token 7 of each [v] line) and
     every statement's deopt token (token 4, "-" on a no-deopt compile).
     Old artifacts must still load, as all-public and descriptor-free *)
  let r = Pipeline.compile_and_optimize cipher_src Pipeline.Base in
  check_bool "v2 program carries secrets" true (n_secret r.Pipeline.prog > 0);
  let v1 =
    Sir_io.write r.Pipeline.prog
    |> String.split_on_char '\n'
    |> List.map (fun line ->
           if line = "specsir/2" then "specsir/1"
           else if String.length line > 2 && String.sub line 0 2 = "v " then
             drop_tok 7 line
           else if String.length line > 5 && String.sub line 0 5 = "stmt "
           then drop_tok 4 line
           else line)
    |> String.concat "\n"
  in
  match Sir_io.read v1 with
  | Error e -> Alcotest.fail ("specsir/1 read failed: " ^ e)
  | Ok back ->
    check_int "every variable degrades to public" 0 (n_secret back);
    check_int "no descriptors" 0 (Spec_safety.Deopt.count back);
    check_str "checker refuses to claim anything" "unannotated"
      (Spec_safety.Taint.verdict_str
         (Spec_safety.Taint.check back).Spec_safety.Taint.rp_verdict);
    check_str "degraded program still runs identically"
      (interp_output r.Pipeline.prog) (interp_output back)

let test_sir_io_rejects_drift () =
  let r = Pipeline.compile_and_optimize ~deopt:true cipher_src Pipeline.Base in
  let text = Sir_io.write r.Pipeline.prog in
  (* replace the first occurrence: enough to corrupt a header *)
  let sub ~sub:s ~by t =
    let ls = String.length s and lt = String.length t in
    let rec find i =
      if i > lt - ls then t
      else if String.sub t i ls = s then
        String.sub t 0 i ^ by ^ String.sub t (i + ls) (lt - i - ls)
      else find (i + 1)
    in
    find 0
  in
  List.iter
    (fun (what, bad) ->
      match Sir_io.read bad with
      | Ok _ -> Alcotest.failf "serializer drift accepted: %s" what
      | Error _ -> ())
    [ "unknown version tag", sub ~sub:"specsir/2" ~by:"specsir/9" text;
      "mangled section header", sub ~sub:"\nvars " ~by:"\nvarz " text;
      "mangled statement header", sub ~sub:"\nstmt " ~by:"\nstm " text;
      "truncated document", String.sub text 0 (String.length text - 4) ]

let test_artifact_roundtrip () =
  let r = Pipeline.compile_and_optimize base_src Pipeline.Base in
  let blob = Pipeline.write_artifact r in
  match Pipeline.read_artifact blob with
  | Error e -> Alcotest.fail ("artifact read failed: " ^ e)
  | Ok a ->
    check_bool "stats preserved" true (a.Pipeline.a_stats = r.Pipeline.stats);
    check_str "report preserved"
      (Passes.report_to_json r.Pipeline.report)
      a.Pipeline.a_report_json;
    check_str "program preserved"
      (Pp.prog_to_string r.Pipeline.prog)
      (Pp.prog_to_string a.Pipeline.a_prog)

(* ---- content-addressed cache ---- *)

let fresh_dir tag =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "specfdo-test-%d-%s" (Unix.getpid ()) tag)
  in
  (match Sys.readdir dir with
   | files ->
     Array.iter (fun f -> Sys.remove (Filename.concat dir f)) files
   | exception Sys_error _ -> ());
  dir

let total_pass_runs (r : Passes.report) =
  List.fold_left (fun acc ps -> acc + ps.Passes.ps_runs) 0 r.Passes.rp_passes

let test_cache_blob_store () =
  let c = Cache.create (fresh_dir "blob") in
  let key = String.make 32 'a' in
  check_bool "miss on empty" true (Cache.find c key = None);
  Cache.store c key "payload";
  check_bool "hit after store" true (Cache.find c key = Some "payload");
  let st = Cache.stats c in
  check_int "one hit" 1 st.Cache.hits;
  check_int "one miss" 1 st.Cache.misses;
  check_int "one store" 1 st.Cache.stores;
  (match Cache.find c "not-a-hex-key!" with
   | _ -> Alcotest.fail "accepted malformed key"
   | exception Invalid_argument _ -> ())

let test_cache_eviction () =
  let c = Cache.create ~max_entries:1 (fresh_dir "evict") in
  Cache.store c (String.make 32 'a') "one";
  Cache.store c (String.make 32 'b') "two";
  check_int "capped at one entry" 1 (Cache.length c);
  check_int "one eviction" 1 (Cache.stats c).Cache.evictions;
  check_bool "newest survives" true
    (Cache.find c (String.make 32 'b') = Some "two")

let test_cache_pipeline_hit () =
  let c = Cache.create (fresh_dir "pipe") in
  let compile () =
    Pipeline.compile_and_optimize ~cache:c base_src Pipeline.Base
  in
  let cold = compile () in
  check_bool "cold compile is not from cache" false cold.Pipeline.from_cache;
  check_bool "cold compile ran passes" true
    (total_pass_runs cold.Pipeline.report > 0);
  let warm = compile () in
  check_bool "warm compile is from cache" true warm.Pipeline.from_cache;
  check_int "warm compile ran zero passes" 0
    (total_pass_runs warm.Pipeline.report);
  check_str "warm program identical"
    (Pp.prog_to_string cold.Pipeline.prog)
    (Pp.prog_to_string warm.Pipeline.prog);
  check_bool "warm stats identical" true
    (warm.Pipeline.stats = cold.Pipeline.stats);
  (* different variant, different key: no false sharing *)
  let other =
    Pipeline.compile_and_optimize ~cache:c base_src Pipeline.Spec_heuristic
  in
  check_bool "different variant misses" false other.Pipeline.from_cache

let test_cache_corrupt_artifact () =
  let dir = fresh_dir "corrupt" in
  let c = Cache.create dir in
  let cold =
    Pipeline.compile_and_optimize ~cache:c base_src Pipeline.Base
  in
  (* truncate the stored artifact behind the cache's back *)
  (match Sys.readdir dir with
   | [| f |] ->
     let oc = open_out (Filename.concat dir f) in
     output_string oc "specart/1 stats";
     close_out oc
   | _ -> Alcotest.fail "expected exactly one artifact");
  let again =
    Pipeline.compile_and_optimize ~cache:c base_src Pipeline.Base
  in
  check_bool "corrupt artifact recompiles" false again.Pipeline.from_cache;
  check_str "recompiled program identical"
    (Pp.prog_to_string cold.Pipeline.prog)
    (Pp.prog_to_string again.Pipeline.prog);
  (* and the overwrite repaired the entry *)
  let warm =
    Pipeline.compile_and_optimize ~cache:c base_src Pipeline.Base
  in
  check_bool "repaired entry hits" true warm.Pipeline.from_cache

let test_cache_profile_needs_digest () =
  let c = Cache.create (fresh_dir "digest") in
  let prog, prof, _ = Pipeline.train base_src in
  let store = Store.of_profile prog prof in
  let digest = Store.digest store in
  (* profile-fed compile without a digest must bypass the cache *)
  let r1 =
    Pipeline.compile_and_optimize ~cache:c ~edge_profile:(Some prof)
      base_src (Pipeline.Spec_profile prof)
  in
  check_bool "no digest: bypass" false r1.Pipeline.from_cache;
  check_int "no digest: no store" 0 (Cache.stats c).Cache.stores;
  (* with a digest it caches *)
  let r2 =
    Pipeline.compile_and_optimize ~cache:c ~edge_profile:(Some prof)
      ~profile_digest:digest base_src (Pipeline.Spec_profile prof)
  in
  check_bool "cold with digest" false r2.Pipeline.from_cache;
  let r3 =
    Pipeline.compile_and_optimize ~cache:c ~edge_profile:(Some prof)
      ~profile_digest:digest base_src (Pipeline.Spec_profile prof)
  in
  check_bool "warm with digest" true r3.Pipeline.from_cache;
  check_str "warm profile compile identical"
    (Pp.prog_to_string r2.Pipeline.prog)
    (Pp.prog_to_string r3.Pipeline.prog)

(* ---- bench schema: the optional "fdo" section ---- *)

let test_bench_json_fdo_section () =
  let cell =
    { Experiments.f_wname = "w"; f_cold_s = 0.01; f_warm_s = 0.001;
      f_hits = 1; f_misses = 1; f_stores = 1; f_evictions = 0;
      f_cold_passes = 26; f_warm_passes = 0; f_warm_hit = true;
      f_identical = true; f_match_rate = 1.0 }
  in
  let fdo = Bench_json.fdo_json [ cell ] in
  let dump =
    Bench_json.dump ~date:"2026-08-07" ~inputs:"train" ~jobs:1
      ~harness_wall_s:0.1 ~fdo []
  in
  (match Bench_json.check dump with
   | Ok () -> ()
   | Error e -> Alcotest.fail ("fdo section rejected: " ^ e));
  (* a malformed cell (missing field) must be rejected *)
  let broken =
    Bench_json.dump ~date:"2026-08-07" ~inputs:"train" ~jobs:1
      ~harness_wall_s:0.1 ~fdo:"{\"workloads\":[{\"workload\":\"w\"}]}" []
  in
  (match Bench_json.check broken with
   | Ok () -> Alcotest.fail "accepted malformed fdo cell"
   | Error _ -> ())

let suite =
  [ Alcotest.test_case "textio round trip" `Quick test_textio_roundtrip;
    Alcotest.test_case "store round trip" `Quick test_store_roundtrip;
    Alcotest.test_case "store format golden" `Quick test_store_golden;
    Alcotest.test_case "store rejects drift" `Quick test_store_rejects_drift;
    Alcotest.test_case "merge laws" `Quick test_merge_laws;
    Alcotest.test_case "decay" `Quick test_decay;
    Alcotest.test_case "stale matching is sound" `Quick
      test_stale_matching_sound;
    Alcotest.test_case "merged profile, same decisions" `Quick
      test_merge_same_decisions;
    Alcotest.test_case "sir_io round trip" `Quick test_sir_io_roundtrip;
    Alcotest.test_case "sir_io safety metadata round trip" `Quick
      test_sir_io_safety_roundtrip;
    Alcotest.test_case "sir_io reads specsir/1 all-public" `Quick
      test_sir_io_v1_degrades;
    Alcotest.test_case "sir_io rejects drift" `Quick
      test_sir_io_rejects_drift;
    Alcotest.test_case "artifact round trip" `Quick test_artifact_roundtrip;
    Alcotest.test_case "cache blob store" `Quick test_cache_blob_store;
    Alcotest.test_case "cache eviction" `Quick test_cache_eviction;
    Alcotest.test_case "cache pipeline hit" `Quick test_cache_pipeline_hit;
    Alcotest.test_case "cache corrupt artifact" `Quick
      test_cache_corrupt_artifact;
    Alcotest.test_case "profile compiles need a digest" `Quick
      test_cache_profile_needs_digest;
    Alcotest.test_case "bench json fdo section" `Quick
      test_bench_json_fdo_section ]
