let () =
  Alcotest.run "specpre"
    [ ("frontend", Test_frontend.suite);
      ("cfg", Test_cfg.suite);
      ("interp", Test_interp.suite);
      ("alias", Test_alias.suite);
      ("ssa", Test_ssa.suite);
      ("ssapre", Test_ssapre.suite);
      ("strength", Test_strength.suite);
      ("refine", Test_refine.suite);
      ("units", Test_units.suite);
      ("dense", Test_dense.suite);
      ("cleanup", Test_cleanup.suite);
      ("store_promo", Test_store_promo.suite);
      ("paper", Test_paper_examples.suite);
      ("fuzz", Test_fuzz.suite);
      ("machine", Test_machine.suite);
      ("schedule", Test_schedule.suite);
      ("passes", Test_passes.suite);
      ("parallel", Test_parallel_compile.suite);
      ("workloads", Test_workloads.suite);
      ("engines", Test_engines.suite);
      ("stress", Test_stress.suite);
      ("safety", Test_safety.suite);
      ("fdo", Test_fdo.suite);
      ("backends", Test_backends.suite);
      ("service", Test_service.suite);
      ("shard", Test_shard.suite) ]
