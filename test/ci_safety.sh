#!/bin/sh
# @ci smoke for the speculative-safety subsystem: the checker must
# CONFIRM the leaky cipher kernel (and --safety strict must fail its
# compile), pass the constant-time kernel under strict, and deopt-based
# recovery under forced ALAT flushes must agree across both interpreter
# engines while actually exercising the deopt path.  Malformed
# safety/recovery flag spellings must die with a non-zero exit and a
# one-line usage hint, never compile anyway.
set -eu

speccc="$1"
leaky="$2"
ct="$3"

work="$(mktemp -d -t speccc-safety-ci-XXXXXX)"
trap 'rm -rf "$work"' EXIT

# -- checker verdicts ------------------------------------------------

"$speccc" stats --safety report "$leaky" > "$work/leaky.out" 2>&1 || {
  echo "safety ci: report mode must not fail the compile" >&2
  exit 1
}
grep -q "CONFIRMED spec-addr round:spec-addr:(sbox + (idx \* 8))#0" \
  "$work/leaky.out" || {
  echo "safety ci: leaky kernel missing the confirmed site:" >&2
  cat "$work/leaky.out" >&2
  exit 1
}
grep -q "safety: leaks" "$work/leaky.out" || {
  echo "safety ci: leaky kernel not flagged as leaking" >&2
  exit 1
}

if "$speccc" stats --safety strict "$leaky" > /dev/null 2>&1; then
  echo "safety ci: strict mode accepted the leaky kernel" >&2
  exit 1
fi

"$speccc" stats --safety strict "$ct" > "$work/ct.out" 2>&1 || {
  echo "safety ci: strict mode rejected the constant-time kernel:" >&2
  cat "$work/ct.out" >&2
  exit 1
}
grep -q "safety: safe" "$work/ct.out" || {
  echo "safety ci: constant-time kernel not flagged safe" >&2
  exit 1
}

# -- deopt recovery under forced interference ------------------------

# speccc itself hard-fails on any tree/vm divergence under --engine both
"$speccc" run --mode heuristic --engine both --recover deopt \
  --faults flush=16 "$leaky" > "$work/deopt.out" 2>&1 || {
  echo "safety ci: deopt recovery run failed:" >&2
  cat "$work/deopt.out" >&2
  exit 1
}
grep -q "engine=tree .*deopts=[1-9]" "$work/deopt.out" || {
  echo "safety ci: forced flushes never exercised the deopt path:" >&2
  cat "$work/deopt.out" >&2
  exit 1
}

# -- error paths must exit non-zero with a usage hint ----------------

expect_fail() {
  what="$1"; shift
  if "$@" > "$work/err.out" 2>&1; then
    echo "safety ci: $what exited zero" >&2
    exit 1
  fi
  grep -qi "usage\|invalid value\|unknown option" "$work/err.out" || {
    echo "safety ci: $what gave no usage hint:" >&2
    cat "$work/err.out" >&2
    exit 1
  }
}

expect_fail "bad --safety spelling" \
  "$speccc" stats --safety bogus "$leaky"
expect_fail "bad --recover spelling" \
  "$speccc" run --recover bogus "$leaky"
expect_fail "unknown option" \
  "$speccc" stats --frobnicate "$leaky"
expect_fail "--recover deopt with --machine" \
  "$speccc" run --machine --recover deopt "$leaky"
expect_fail "--safety on a pre-optimization phase" \
  "$speccc" dump --phase ast --safety report "$leaky"

echo "safety ci ok"
