(* The differential/fuzz test wall around the compile service
   (lib/service): codec round-trips (units + QCheck fuzz over
   adversarial payloads), protocol robustness over a live socket
   (malformed / truncated / wrong-version / oversized lines get
   structured errors and the daemon keeps serving), daemon-vs-offline
   differential compiles (byte-identical programs and execution output,
   cold and warm, across modes), single-flight dedup under same-key
   batches, store health under mixed-key storms, online-FDO semantics
   (report order independence with lambda = 1, background-recompile
   equivalence with the offline merge + compile, stale-report
   soundness), and the [service] section of the specpre-bench/7
   schema.  The sharded router on top of the daemon core is covered
   in test_shard.ml. *)

open Spec_ir
open Spec_fdo
open Spec_driver
open Spec_service

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* Two small deterministic kernels: branches for edge evidence, arrays
   and a pointer so speculation has something to chew on. *)
let src_a =
  "int A[40];\n\
   int s;\n\
   int main() {\n\
  \  int i; s = 0;\n\
  \  for (i = 0; i < 40; i++) { A[i] = 3 * i; }\n\
  \  for (i = 0; i < 40; i++) {\n\
  \    if (i < 30) { s = s + A[i]; } else { s = s + 2 * A[i]; }\n\
  \  }\n\
  \  print_int(s);\n\
  \  return 0;\n\
   }\n"

let src_b =
  "int g;\n\
   int bump(int k) { g = g + k; return g; }\n\
   int main() {\n\
  \  int i; int s; int* p;\n\
  \  s = 0; p = &g; *p = 2;\n\
  \  for (i = 0; i < 25; i++) { s = s + *p + i; }\n\
  \  s = s + bump(4);\n\
  \  print_int(s + g);\n\
  \  return 0;\n\
   }\n"

(* src_a with the hot loop restructured: profiles recorded against
   src_a are stale for it. *)
let src_a_edited =
  "int A[40];\n\
   int s;\n\
   int main() {\n\
  \  int i; s = 0;\n\
  \  for (i = 0; i < 35; i++) { A[i] = 3 * i; s = s + A[i]; }\n\
  \  print_int(s);\n\
  \  return 0;\n\
   }\n"

let fresh_dir tag =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "specsvc-test-%d-%s" (Unix.getpid ()) tag)
  in
  (match Sys.readdir dir with
   | files ->
     Array.iter (fun f -> Sys.remove (Filename.concat dir f)) files
   | exception Sys_error _ -> ());
  dir

let daemon ?(drift = 0.05) ?(lambda = 1.0) tag =
  Daemon.create
    { (Daemon.default_config ~cache_dir:(fresh_dir tag)) with
      Daemon.sv_drift = drift; sv_lambda = lambda }

let counter t name = List.assoc name (Daemon.counters t)

let compile_req ?(unit_name = "u") ?(mode = "base") ?(rounds = 3)
    ?(strength = true) ?(exec = false) src =
  Proto.Compile
    { Proto.cq_unit = unit_name; cq_mode = mode; cq_rounds = rounds;
      cq_strength = strength; cq_exec = exec; cq_src = src }

let report_req ?(weight = 1.0) unit_name store =
  Proto.Report_profile
    { rq_unit = unit_name; rq_weight = weight;
      rq_store = Store.write store }

let compiled = function
  | Proto.Compiled r -> r
  | Proto.Error m -> Alcotest.fail ("compile errored: " ^ m)
  | _ -> Alcotest.fail "expected a compiled reply"

let profiled = function
  | Proto.Profiled r -> r
  | Proto.Error m -> Alcotest.fail ("report errored: " ^ m)
  | _ -> Alcotest.fail "expected a profiled reply"

let store_of src =
  let prog, prof, _ = Pipeline.train src in
  Store.of_profile prog prof

let vm_out (r : Pipeline.result) =
  (Spec_prof.Vm.run_program (Lazy.force r.Pipeline.vm))
    .Spec_prof.Interp.output

(* The offline arm of the differential tests: exactly what the daemon
   is specified to compute, straight through the pipeline with no
   cache and no service machinery. *)
let offline ?(rounds = 3) ?(strength = true) ?store src mode =
  match mode with
  | "none" -> Pipeline.compile_and_optimize ~rounds ~strength src Pipeline.Noopt
  | "base" -> Pipeline.compile_and_optimize ~rounds ~strength src Pipeline.Base
  | "heuristic" ->
    Pipeline.compile_and_optimize ~rounds ~strength src Pipeline.Spec_heuristic
  | "aggressive" ->
    Pipeline.compile_and_optimize ~rounds ~strength src Pipeline.Aggressive
  | "profile" ->
    let store = match store with Some s -> s | None -> Store.empty in
    let prof, _ = Store.bind store (Lower.compile src) in
    Pipeline.compile_and_optimize ~rounds ~strength
      ~edge_profile:(Some prof) src (Pipeline.Spec_profile prof)
  | m -> Alcotest.fail ("offline: unknown mode " ^ m)

(* ---- codec: units ---- *)

let test_proto_roundtrip_units () =
  let reqs =
    [ compile_req ~unit_name:"spaced unit" ~mode:"base" ~exec:true
        "int main() { return 0; }\n";
      compile_req ~unit_name:"" ~mode:"none" ~rounds:0 ~strength:false "";
      report_req ~weight:0.5 "u\nv" (store_of src_b);
      Proto.Report_profile
        { rq_unit = "q\"uote\\slash"; rq_weight = 2.25;
          rq_store = "not a store\x01\xff" };
      Proto.Stats; Proto.Shutdown ]
  in
  List.iter
    (fun r ->
      let line = Proto.encode_request r in
      check_bool "request encodes to one line" false
        (String.contains line '\n');
      match Proto.decode_request line with
      | Ok back -> check_bool "request round trip" true (back = r)
      | Error e -> Alcotest.fail ("request decode failed: " ^ e))
    reqs;
  let resps =
    [ Proto.Compiled
        { Proto.cr_served = Proto.Cold; cr_key = String.make 32 'a';
          cr_digest = "-"; cr_match_ppm = 1_000_000;
          cr_prog = "func main()\n{\n}\n"; cr_output = "42\n" };
      Proto.Compiled
        { Proto.cr_served = Proto.Joined; cr_key = ""; cr_digest = "";
          cr_match_ppm = 0; cr_prog = ""; cr_output = "tab\there" };
      Proto.Compiled
        { Proto.cr_served = Proto.Parked; cr_key = String.make 32 '0';
          cr_digest = String.make 32 'b'; cr_match_ppm = 500_000;
          cr_prog = "func f()\n{\n}\n"; cr_output = "" };
      Proto.Profiled
        { Proto.rr_runs = 3; rr_digest = String.make 32 'f';
          rr_drift = 0.125; rr_recompiled = true };
      Proto.Stats_reply [ ("requests", 7); ("with space", 0) ];
      Proto.Stats_reply []; Proto.Bye; Proto.Error "bad \"thing\"\nhappened" ]
  in
  List.iter
    (fun r ->
      let line = Proto.encode_response r in
      check_bool "response encodes to one line" false
        (String.contains line '\n');
      match Proto.decode_response line with
      | Ok back -> check_bool "response round trip" true (back = r)
      | Error e -> Alcotest.fail ("response decode failed: " ^ e))
    resps

let test_proto_rejects () =
  let must_err what = function
    | Ok _ -> Alcotest.fail ("accepted " ^ what)
    | Error msg -> check_bool (what ^ ": non-empty error") true (msg <> "")
  in
  must_err "empty line" (Proto.decode_request "");
  must_err "garbage" (Proto.decode_request "ceci n'est pas une requete");
  must_err "wrong version" (Proto.decode_request "specsvc/0 stats");
  must_err "old version (no parked tag)"
    (Proto.decode_request "specsvc/1 stats");
  must_err "future version" (Proto.decode_request "specsvc/3 stats");
  must_err "unknown verb" (Proto.decode_request "specsvc/2 frobnicate");
  must_err "truncated compile" (Proto.decode_request "specsvc/2 compile u");
  must_err "bad int"
    (Proto.decode_request "specsvc/2 compile u base x 1 0 src");
  must_err "bad bool"
    (Proto.decode_request "specsvc/2 compile u base 3 yes 0 src");
  must_err "unterminated quote"
    (Proto.decode_request "specsvc/2 compile \"u base 3 1 0 src");
  must_err "trailing tokens" (Proto.decode_request "specsvc/2 stats extra");
  must_err "oversized"
    (Proto.decode_request
       ("specsvc/2 compile u base 3 1 0 "
       ^ String.make (Proto.max_line + 1) 's'));
  must_err "negative stats count"
    (Proto.decode_response "specsvc/2 stats -1");
  must_err "absurd stats count"
    (Proto.decode_response "specsvc/2 stats 99999");
  must_err "unknown served tag"
    (Proto.decode_response "specsvc/2 compiled tepid k d 0 p o")

(* ---- codec: fuzz ---- *)

let gen_wild_string =
  QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_bound 30))

let gen_finite_weight =
  QCheck.Gen.map
    (fun f -> if Float.is_finite f then Float.abs f else 1.5)
    QCheck.Gen.float

let gen_request =
  let open QCheck.Gen in
  frequency
    [ (4,
       gen_wild_string >>= fun u ->
       gen_wild_string >>= fun mode ->
       gen_wild_string >>= fun src ->
       int_bound 9 >>= fun rounds ->
       bool >>= fun strength ->
       bool >>= fun exec ->
       return
         (Proto.Compile
            { Proto.cq_unit = u; cq_mode = mode; cq_rounds = rounds;
              cq_strength = strength; cq_exec = exec; cq_src = src }));
      (2,
       gen_wild_string >>= fun u ->
       gen_finite_weight >>= fun w ->
       gen_wild_string >>= fun store ->
       return
         (Proto.Report_profile
            { rq_unit = u; rq_weight = w; rq_store = store }));
      (1, return Proto.Stats);
      (1, return Proto.Shutdown) ]

let show_request r = Proto.encode_request r

let fuzz_request_roundtrip =
  QCheck.Test.make ~count:500 ~name:"codec fuzz: request round trip"
    (QCheck.make ~print:show_request gen_request) (fun r ->
      let line = Proto.encode_request r in
      (not (String.contains line '\n'))
      && Proto.decode_request line = Ok r)

let fuzz_decode_total =
  (* feeding arbitrary bytes to both decoders must never raise; a
     version-tagged prefix drives the fuzz deeper into the grammar *)
  let gen =
    QCheck.Gen.(
      pair bool gen_wild_string
      |> map (fun (tagged, s) -> if tagged then "specsvc/2 " ^ s else s))
  in
  QCheck.Test.make ~count:1000 ~name:"codec fuzz: decode is total"
    (QCheck.make ~print:(fun s -> s) gen) (fun line ->
      (match Proto.decode_request line with Ok _ | Error _ -> true)
      && (match Proto.decode_response line with Ok _ | Error _ -> true))

(* ---- protocol robustness over a live socket ---- *)

let raw_connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec go n =
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> ()
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when n > 0 ->
      Unix.sleepf 0.05;
      go (n - 1)
  in
  go 40;
  fd

let raw_write fd s =
  let n = String.length s in
  let pos = ref 0 in
  (try
     while !pos < n do
       pos := !pos + Unix.write_substring fd s !pos (n - !pos)
     done
   with Unix.Unix_error (Unix.EPIPE, _, _) -> ());
  !pos

let raw_read_line fd =
  let buf = Buffer.create 256 in
  let one = Bytes.create 1 in
  let rec go () =
    match Unix.read fd one 0 1 with
    | 0 -> None
    | _ ->
      if Bytes.get one 0 = '\n' then Some (Buffer.contents buf)
      else begin
        Buffer.add_char buf (Bytes.get one 0);
        go ()
      end
    | exception Unix.Unix_error _ -> None
  in
  go ()

let is_error_reply = function
  | Some line ->
    (match Proto.decode_response line with
     | Ok (Proto.Error _) -> true
     | _ -> false)
  | None -> false

let test_socket_malformed () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "specsvc-mal-%d.sock" (Unix.getpid ()))
  in
  let cfg = Daemon.default_config ~cache_dir:(fresh_dir "mal") in
  let server = Shard.spawn cfg ~socket:sock in
  (* every malformed line gets a structured error reply on the same
     connection, and the daemon survives all of them *)
  let malformed =
    [ "definitely not a request";
      "specsvc/0 stats";
      "specsvc/1 stats";
      "specsvc/2 frobnicate";
      "specsvc/2 compile u";
      "specsvc/2 compile u base NaN 1 0 src";
      "specsvc/2 compile \"unterminated";
      "specsvc/2 stats trailing" ]
  in
  List.iter
    (fun line ->
      let fd = raw_connect sock in
      ignore (raw_write fd (line ^ "\n") : int);
      check_bool ("structured error for: " ^ line) true
        (is_error_reply (raw_read_line fd));
      Unix.close fd)
    malformed;
  (* an oversized request: the daemon answers with an error and drops
     the connection without wedging *)
  let fd = raw_connect sock in
  let big = String.make (Proto.max_line + 65536) 'x' in
  ignore (raw_write fd big : int);
  let reply = raw_read_line fd in
  check_bool "oversized gets an error or a drop" true
    (is_error_reply reply || reply = None);
  Unix.close fd;
  (* the daemon is still alive and still answers well-formed requests *)
  (match Client.connect sock with
   | Error e -> Alcotest.fail ("daemon died: " ^ e)
   | Ok c ->
     (match Client.rpc c (compile_req ~mode:"base" src_b) with
      | Ok (Proto.Compiled r) ->
        check_bool "post-fuzz compile served" true
          (r.Proto.cr_served = Proto.Cold || r.Proto.cr_served = Proto.Warm)
      | Ok _ -> Alcotest.fail "post-fuzz compile: wrong reply"
      | Error e -> Alcotest.fail ("post-fuzz compile failed: " ^ e));
     (match Client.rpc c Proto.Stats with
      | Ok (Proto.Stats_reply kvs) ->
        check_bool "errors were counted" true
          (List.assoc "errors" kvs >= List.length malformed)
      | Ok _ -> Alcotest.fail "stats: wrong reply"
      | Error e -> Alcotest.fail ("stats failed: " ^ e));
     Client.close c);
  Shard.stop server

(* ---- differential: daemon == direct pipeline ---- *)

let test_differential_modes () =
  let t = daemon "diff" in
  List.iter
    (fun (unit_name, src) ->
      List.iter
        (fun mode ->
          let label = unit_name ^ "/" ^ mode in
          let req = compile_req ~unit_name ~mode ~exec:true src in
          let cold = compiled (Daemon.handle t req) in
          let direct = offline src mode in
          check_bool (label ^ ": first serve is cold") true
            (cold.Proto.cr_served = Proto.Cold);
          check_str (label ^ ": daemon program == direct program")
            (Pp.prog_to_string direct.Pipeline.prog)
            cold.Proto.cr_prog;
          check_str (label ^ ": daemon output == direct output")
            (vm_out direct) cold.Proto.cr_output;
          (* warm repeat: served from the cache, byte-identical *)
          let warm = compiled (Daemon.handle t req) in
          check_bool (label ^ ": repeat serve is warm") true
            (warm.Proto.cr_served = Proto.Warm);
          check_str (label ^ ": warm program identical")
            cold.Proto.cr_prog warm.Proto.cr_prog;
          check_str (label ^ ": warm output identical")
            cold.Proto.cr_output warm.Proto.cr_output;
          check_str (label ^ ": same cache key") cold.Proto.cr_key
            warm.Proto.cr_key)
        [ "none"; "base"; "heuristic" ])
    [ ("a", src_a); ("b", src_b) ]

let test_differential_profile () =
  let t = daemon "diffp" in
  let store = store_of src_a in
  let r1 =
    profiled (Daemon.handle t (report_req "a" store))
  in
  check_int "one training run merged" store.Store.runs r1.Proto.rr_runs;
  check_str "daemon digest == offline digest" (Store.digest store)
    r1.Proto.rr_digest;
  let req = compile_req ~unit_name:"a" ~mode:"profile" ~exec:true src_a in
  let cold = compiled (Daemon.handle t req) in
  let direct = offline ~store src_a "profile" in
  check_bool "profile compile is cold" true
    (cold.Proto.cr_served = Proto.Cold);
  check_int "evidence fully matches" 1_000_000 cold.Proto.cr_match_ppm;
  check_str "profile program == direct profile program"
    (Pp.prog_to_string direct.Pipeline.prog)
    cold.Proto.cr_prog;
  check_str "profile output == direct output" (vm_out direct)
    cold.Proto.cr_output;
  let warm = compiled (Daemon.handle t req) in
  check_bool "profile repeat is warm" true
    (warm.Proto.cr_served = Proto.Warm);
  check_str "warm profile program identical" cold.Proto.cr_prog
    warm.Proto.cr_prog

(* ---- single-flight ---- *)

let test_single_flight () =
  let t = daemon "flight" in
  let n = 6 in
  let reqs = List.init n (fun _ -> compile_req ~mode:"heuristic" src_a) in
  let resps = List.map compiled (Daemon.handle_batch t reqs) in
  check_int "exactly one cold compile" 1 (counter t "cold");
  check_int "everyone else joined" (n - 1) (counter t "joined");
  check_int "no warm serves in the first batch" 0 (counter t "warm");
  let first = List.hd resps in
  check_bool "first requester ran the compile" true
    (first.Proto.cr_served = Proto.Cold);
  List.iteri
    (fun i r ->
      if i > 0 then
        check_bool (Printf.sprintf "request %d joined" i) true
          (r.Proto.cr_served = Proto.Joined);
      check_str (Printf.sprintf "request %d: identical program" i)
        first.Proto.cr_prog r.Proto.cr_prog;
      check_str (Printf.sprintf "request %d: identical key" i)
        first.Proto.cr_key r.Proto.cr_key)
    resps;
  (* a later batch for the same key is warm, not cold and not joined *)
  let again = compiled (Daemon.handle t (List.hd reqs)) in
  check_bool "across batches the cache serves" true
    (again.Proto.cr_served = Proto.Warm);
  check_int "still exactly one cold compile" 1 (counter t "cold")

let test_mixed_key_storm () =
  let t = daemon "storm" in
  let store_a = store_of src_a and store_b = store_of src_b in
  let batch =
    [ compile_req ~unit_name:"a" ~mode:"base" src_a;
      compile_req ~unit_name:"b" ~mode:"heuristic" src_b;
      report_req ~weight:1.0 "a" store_a;
      compile_req ~unit_name:"a" ~mode:"base" src_a;       (* dup key *)
      report_req ~weight:0.5 "b" store_b;
      compile_req ~unit_name:"b" ~mode:"none" src_b;
      compile_req ~unit_name:"a" ~mode:"profile" src_a;
      report_req ~weight:2.0 "a" store_a;
      compile_req ~unit_name:"b" ~mode:"heuristic" src_b ] (* dup key *)
  in
  let resps = Daemon.handle_batch t batch in
  check_int "every request answered" (List.length batch)
    (List.length resps);
  List.iter
    (function
      | Proto.Error m -> Alcotest.fail ("storm request errored: " ^ m)
      | _ -> ())
    resps;
  check_int "no protocol errors" 0 (counter t "errors");
  check_int "both dup keys joined" 2 (counter t "joined");
  check_int "storm left no invalid store" 0 (counter t "store_invalid");
  List.iter
    (fun (name, s) ->
      match Store.validate s with
      | Ok () -> ()
      | Error e ->
        Alcotest.fail
          (Printf.sprintf "unit %s store invalid after storm: %s" name e))
    (Daemon.unit_stores t)

(* ---- the online FDO loop ---- *)

(* Reports arriving in any order must leave the same accumulated store
   (lambda = 1 keeps the merge commutative) and, once drift triggers
   the background recompile, the same swapped artifact — which in turn
   must be byte-identical to the offline merge-then-compile. *)
let test_report_order_independence () =
  let stores =
    [ (store_of src_a, 1.0);
      (store_of (src_a ^ "\n"), 0.5);    (* same program, new digest *)
      (store_of src_b, 2.0) ]
  in
  let run tag reports =
    let t = daemon ~drift:0.05 tag in
    (* a profile compile first: sets the unit's source and the drift
       snapshot the reports will be measured against *)
    ignore
      (compiled
         (Daemon.handle t
            (compile_req ~unit_name:"u" ~mode:"profile" src_a)));
    let resps =
      Daemon.handle_batch t
        (List.map (fun (s, w) -> report_req ~weight:w "u" s) reports)
    in
    let last = profiled (List.nth resps (List.length resps - 1)) in
    check_bool (tag ^ ": drift triggered a recompile") true
      last.Proto.rr_recompiled;
    check_int (tag ^ ": exactly one background recompile") 1
      (counter t "recompiles");
    let art =
      match Daemon.current_artifact t "u" with
      | Some r -> r
      | None -> Alcotest.fail (tag ^ ": no current artifact")
    in
    (last.Proto.rr_digest, Pp.prog_to_string art.Pipeline.prog, vm_out art)
  in
  let digest_fwd, prog_fwd, out_fwd = run "fdo-fwd" stores in
  let digest_rev, prog_rev, out_rev = run "fdo-rev" (List.rev stores) in
  check_str "accumulated digests agree across orders" digest_fwd digest_rev;
  check_str "recompiled artifacts agree across orders" prog_fwd prog_rev;
  check_str "artifact outputs agree across orders" out_fwd out_rev;
  (* offline equivalence: fold the same merges, compile directly *)
  let merged =
    List.fold_left
      (fun acc (s, w) -> Store.merge_weighted ~wa:1.0 ~wb:w acc s)
      Store.empty stores
  in
  check_str "offline merge reproduces the daemon digest"
    (Store.digest merged) digest_fwd;
  let direct = offline ~store:merged src_a "profile" in
  check_str "offline recompile reproduces the daemon artifact"
    (Pp.prog_to_string direct.Pipeline.prog)
    prog_fwd;
  check_str "offline output agrees" (vm_out direct) out_fwd

let test_decay_weighting () =
  (* with lambda < 1 old evidence decays: after many fresh reports the
     accumulated store converges toward the fresh evidence, so the
     recompile uses recent behavior.  We just pin the arithmetic: the
     daemon's store equals the explicit weighted fold. *)
  let s1 = store_of src_a and s2 = store_of src_b in
  let lambda = 0.5 in
  let t = daemon ~lambda "decay" in
  ignore (profiled (Daemon.handle t (report_req ~weight:1.0 "u" s1)));
  let r2 = profiled (Daemon.handle t (report_req ~weight:1.0 "u" s2)) in
  let expected =
    Store.merge_weighted ~wa:lambda ~wb:1.0
      (Store.merge_weighted ~wa:lambda ~wb:1.0 Store.empty s1)
      s2
  in
  check_str "decayed fold matches the daemon store"
    (Store.digest expected) r2.Proto.rr_digest

(* A report recorded against an old source is stale for the edited
   one: binding drops unmatched sites (match < 1), and the compile
   still produces output identical to the unoptimized oracle. *)
let test_stale_report_sound () =
  let t = daemon "stale" in
  let old_store = store_of src_a in
  ignore (profiled (Daemon.handle t (report_req "a" old_store)));
  let r =
    compiled
      (Daemon.handle t
         (compile_req ~unit_name:"a" ~mode:"profile" ~exec:true src_a_edited))
  in
  check_bool "stale evidence binds partially" true
    (r.Proto.cr_match_ppm < 1_000_000);
  let oracle =
    (Spec_prof.Interp.run (Lower.compile src_a_edited))
      .Spec_prof.Interp.output
  in
  check_str "stale-profile compile output == unoptimized oracle" oracle
    r.Proto.cr_output

(* ---- traffic replay + the bench schema's service section ---- *)

let replace_all ~pat ~by s =
  let b = Buffer.create (String.length s) in
  let pl = String.length pat in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if !i + pl <= n && String.sub s !i pl = pat then begin
      Buffer.add_string b by;
      i := !i + pl
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

let test_traffic_smoke () =
  let cell = Traffic.run_traffic_replay ~quick:true ~requests:60 () in
  check_int "replayed every request" 60 cell.Traffic.t_requests;
  check_int "no daemon errors" 0 cell.Traffic.t_errors;
  check_int "no divergences" 0 cell.Traffic.t_divergences;
  check_bool "cache warmed up" true (cell.Traffic.t_warm > 0);
  check_bool "cold compiles happened" true (cell.Traffic.t_cold > 0);
  check_bool "reports flowed" true (cell.Traffic.t_reports > 0);
  check_bool "latency percentiles ordered" true
    (cell.Traffic.t_p50_ms <= cell.Traffic.t_p99_ms);
  let dump =
    Bench_json.dump ~date:"2026-08-09" ~inputs:"train" ~jobs:2
      ~harness_wall_s:0.1 ~service:(Traffic.to_json cell) []
  in
  (match Bench_json.check dump with
   | Ok () -> ()
   | Error e -> Alcotest.fail ("service section rejected: " ^ e));
  (* the validator pins divergences to zero and the full field set *)
  let broken_div =
    Bench_json.dump ~date:"2026-08-09" ~inputs:"train" ~jobs:2
      ~harness_wall_s:0.1
      ~service:
        (replace_all ~pat:"\"divergences\":0" ~by:"\"divergences\":1"
           (Traffic.to_json cell))
      []
  in
  (match Bench_json.check broken_div with
   | Ok () -> Alcotest.fail "accepted a dump with divergences"
   | Error _ -> ());
  let missing_field =
    Bench_json.dump ~date:"2026-08-09" ~inputs:"train" ~jobs:2
      ~harness_wall_s:0.1 ~service:"{\"seed\": 1}" []
  in
  (match Bench_json.check missing_field with
   | Ok () -> Alcotest.fail "accepted a service section missing fields"
   | Error _ -> ())

let suite =
  [ Alcotest.test_case "proto round trip units" `Quick
      test_proto_roundtrip_units;
    Alcotest.test_case "proto rejects malformed" `Quick test_proto_rejects;
    QCheck_alcotest.to_alcotest fuzz_request_roundtrip;
    QCheck_alcotest.to_alcotest fuzz_decode_total;
    Alcotest.test_case "socket survives malformed lines" `Quick
      test_socket_malformed;
    Alcotest.test_case "differential: plain modes" `Quick
      test_differential_modes;
    Alcotest.test_case "differential: profile mode" `Quick
      test_differential_profile;
    Alcotest.test_case "single-flight dedup" `Quick test_single_flight;
    Alcotest.test_case "mixed-key storm" `Quick test_mixed_key_storm;
    Alcotest.test_case "report order independence" `Quick
      test_report_order_independence;
    Alcotest.test_case "decay weighting" `Quick test_decay_weighting;
    Alcotest.test_case "stale reports are sound" `Quick
      test_stale_report_sound;
    Alcotest.test_case "traffic replay smoke" `Quick test_traffic_smoke ]
