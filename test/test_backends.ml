(* Backend-interface suite (PR 6).

   The machine is now a backend interface ({!Backend.S}) with two core
   models: the paper's in-order EPIC machine ({!Inorder}, the default
   engine) and an out-of-order control ({!Ooo}: ROB + LSQ with a
   memory-dependence predictor + checkpoint-restore analogues).  The
   contract this suite enforces:

   - dispatch parity: [Machine.run*] and [Machine.run*_on Inorder] are
     the same engine, and the in-order goldens of [test_engines.ml]
     hold bit-for-bit through the dispatch path (drift rejection);
   - architectural agreement: for every workload under every pipeline
     variant, the two backends retire the same instruction stream and
     produce byte-identical program output — only timing may differ;
   - the OoO memory system: loads issued past unresolved aliasing
     stores replay ([lsq_replays]), and the memory-dependence
     predictors (store-set, last-violator) learn to suppress replays
     without changing program output;
   - the stress layer maps onto the OoO core: injected ALAT flushes
     poison the predictor and drain the store queue ([mdp_poisons])
     instead of being silently ignored, and zero-fault stress points
     reproduce the unfaulted OoO baseline exactly. *)

open Spec_driver
open Spec_machine
open Spec_stress

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let find = Spec_workloads.Workloads.find
let wname w = w.Spec_workloads.Workloads.name

(* ------------------------------------------------------------------ *)
(* Backend naming + dispatch parity                                    *)
(* ------------------------------------------------------------------ *)

let test_backend_names () =
  check_int "two core models" 2 (List.length Machine.all_backends);
  List.iter
    (fun b ->
      match Machine.backend_of_string (Machine.backend_name b) with
      | Some b' -> check_bool "name round-trips" true (b = b')
      | None -> Alcotest.failf "%s does not parse" (Machine.backend_name b))
    Machine.all_backends;
  check_bool "in-order aliases" true
    (Machine.backend_of_string "in-order" = Some Machine.Inorder);
  check_bool "out-of-order aliases" true
    (Machine.backend_of_string "out-of-order" = Some Machine.Ooo);
  check_bool "unknown name rejected" true
    (Machine.backend_of_string "vliw" = None)

let test_default_engine_is_inorder () =
  (* the façade's default engine must BE the in-order core: same module,
     not a lookalike (kind comes from [include Inorder]) *)
  check_bool "Machine.kind" true (Machine.kind = Machine.Inorder);
  let src = Spec_workloads.Workloads.train_source (find "art") in
  let r = Pipeline.compile_and_optimize src Pipeline.Base in
  let direct = Machine.run_sir r.Pipeline.prog in
  let dispatched = Machine.run_sir_on Machine.Inorder r.Pipeline.prog in
  check_str "output identical" direct.Machine.output
    dispatched.Machine.output;
  check_bool "counters identical" true
    (direct.Machine.perf = dispatched.Machine.perf)

(* in-order golden drift rejection through the dispatch path: the
   [test_engines.ml] goldens (captured from the pre-split seed
   simulator) must hold when the same workload is driven through
   [run_workload ~backend:Inorder] *)
let inorder_golden_dispatch w () =
  Experiments.machine_config := Machine.default_config;
  let b = Experiments.run_workload ~quick:true ~backend:Machine.Inorder w in
  List.iter
    (fun (vname, (r : Experiments.run)) ->
      let p = r.Experiments.r_machine.Machine.perf in
      let got =
        [ p.Machine.insns; p.Machine.cycles; p.Machine.data_cycles;
          p.Machine.loads_plain; p.Machine.loads_adv; p.Machine.loads_spec;
          p.Machine.checks; p.Machine.check_misses; p.Machine.stores;
          p.Machine.branches; p.Machine.rse_stall_cycles;
          p.Machine.max_stacked_regs;
          r.Experiments.r_machine.Machine.ret_int ]
      in
      let want =
        Test_engines.tuple_to_list
          (List.assoc vname
             (List.filter_map
                (fun (n, v, t) -> if n = wname w then Some (v, t) else None)
                Test_engines.machine_goldens))
      in
      Alcotest.(check (list int))
        (Printf.sprintf "%s/%s in-order counters via dispatch" (wname w)
           vname)
        want got;
      (* the backend split added OoO-only counters; on the in-order core
         they must stay dead *)
      check_int "no br_mispredicts on inorder" 0 p.Machine.br_mispredicts;
      check_int "no lsq_replays on inorder" 0 p.Machine.lsq_replays;
      check_int "no mdp_poisons on inorder" 0 p.Machine.mdp_poisons)
    [ "noopt", b.Experiments.noopt; "base", b.Experiments.base;
      "profile", b.Experiments.prof_spec;
      "heuristic", b.Experiments.heur_spec;
      "aggressive", b.Experiments.aggressive ]

(* ------------------------------------------------------------------ *)
(* Cross-backend architectural agreement                               *)
(* ------------------------------------------------------------------ *)

let agreement_workload w () =
  Experiments.machine_config := Machine.default_config;
  let a = Experiments.run_workload ~quick:true ~backend:Machine.Inorder w in
  let b = Experiments.run_workload ~quick:true ~backend:Machine.Ooo w in
  (* the harness's own hard gate (output + instruction counts) *)
  Experiments.check_backend_agreement a b;
  List.iter2
    (fun (vname, (ri : Experiments.run)) (_, (ro : Experiments.run)) ->
      let mi = ri.Experiments.r_machine and mo = ro.Experiments.r_machine in
      let ctx = Printf.sprintf "%s/%s" (wname w) vname in
      check_str (ctx ^ ": output byte-identical") mi.Machine.output
        mo.Machine.output;
      check_int (ctx ^ ": return value") mi.Machine.ret_int
        mo.Machine.ret_int;
      let pi = mi.Machine.perf and po = mo.Machine.perf in
      check_int (ctx ^ ": insns") pi.Machine.insns po.Machine.insns;
      check_int (ctx ^ ": stores") pi.Machine.stores po.Machine.stores;
      check_int (ctx ^ ": branches") pi.Machine.branches po.Machine.branches;
      (* without injected faults both cores see the same program-order
         ALAT traffic: speculation behaves identically *)
      check_int (ctx ^ ": checks") pi.Machine.checks po.Machine.checks;
      check_int (ctx ^ ": check misses") pi.Machine.check_misses
        po.Machine.check_misses;
      (* timing is the one thing allowed to differ; it must still be a
         plausible cycle count, not zero or wildly off-scale (the OoO
         core may be slower on speculation-heavy variants — replay and
         mispredict penalties are real costs) *)
      check_bool (ctx ^ ": ooo cycles sane") true
        (po.Machine.cycles > 0 && po.Machine.cycles < 8 * pi.Machine.cycles))
    [ "noopt", a.Experiments.noopt; "base", a.Experiments.base;
      "profile", a.Experiments.prof_spec;
      "heuristic", a.Experiments.heur_spec;
      "aggressive", a.Experiments.aggressive ]
    [ "noopt", b.Experiments.noopt; "base", b.Experiments.base;
      "profile", b.Experiments.prof_spec;
      "heuristic", b.Experiments.heur_spec;
      "aggressive", b.Experiments.aggressive ]

(* ------------------------------------------------------------------ *)
(* LSQ misspeculation + memory-dependence prediction                   *)
(* ------------------------------------------------------------------ *)

(* A store whose address takes a long dependence chain to resolve,
   immediately followed by a load of A[0] that the OoO core issues
   underneath it; every third iteration the store actually lands on
   A[0], so the eager load misspeculates and replays.  The predictors
   must learn the store-load pair and suppress the replays. *)
let aliasing_src =
  "int A[64];\n\
   int s;\n\
   int main() {\n\
  \  int i; int j;\n\
  \  i = 0; s = 0;\n\
  \  while (i < 300) {\n\
  \    j = (i / 3) * 3 - i + 2;\n\
  \    A[j] = i;\n\
  \    s = s + A[0];\n\
  \    i = i + 1;\n\
  \  }\n\
  \  print_int(s);\n\
  \  return 0;\n\
   }\n"

let ooo_with_mdp mdp =
  { Machine.default_config with Machine.mdp }

let test_lsq_replay_and_predictors () =
  let r = Pipeline.compile_and_optimize aliasing_src Pipeline.Base in
  let inorder = Machine.run_sir r.Pipeline.prog in
  let run mdp =
    Machine.run_sir_on Machine.Ooo ~config:(ooo_with_mdp mdp)
      r.Pipeline.prog
  in
  let none = run Machine.Mdp_none in
  let ss = run Machine.Mdp_store_set in
  let lv = run Machine.Mdp_last_violator in
  (* replays are a timing event, never an architectural one *)
  List.iter
    (fun (what, (m : Machine.result)) ->
      check_str (what ^ ": output") inorder.Machine.output m.Machine.output;
      check_int (what ^ ": insns") inorder.Machine.perf.Machine.insns
        m.Machine.perf.Machine.insns)
    [ "mdp=none", none; "mdp=store-set", ss; "mdp=last-violator", lv ];
  let replays (m : Machine.result) = m.Machine.perf.Machine.lsq_replays in
  check_bool "unpredicted aliasing loads replay" true (replays none > 0);
  check_bool "store-set suppresses replays" true
    (replays ss < replays none);
  check_bool "last-violator suppresses replays" true
    (replays lv < replays none);
  (* waiting on predicted dependences must cost less than replaying
     every violation *)
  check_bool "prediction beats replay storms" true
    (ss.Machine.perf.Machine.cycles <= none.Machine.perf.Machine.cycles)

(* ------------------------------------------------------------------ *)
(* Stress-layer mapping: ALAT faults -> LSQ flush / predictor poison   *)
(* ------------------------------------------------------------------ *)

let test_faults_poison_predictor () =
  let r = Pipeline.compile_and_optimize aliasing_src Pipeline.Base in
  let clean = Machine.run_sir_on Machine.Ooo r.Pipeline.prog in
  let plan = { (Faults.null 11) with Faults.flush_period = 32 } in
  let inj () =
    match Faults.injector_opt plan ~scope:[ "backends-test"; "machine" ] with
    | Some i -> i
    | None -> Alcotest.fail "flush plan must build an injector"
  in
  let faulted =
    Machine.run_sir_on Machine.Ooo ~faults:(inj ()) r.Pipeline.prog
  in
  (* injected flushes drain the store queue and poison the predictor
     tables — visible in the counter, invisible in the architecture *)
  check_bool "flushes poison the mdp" true
    (faulted.Machine.perf.Machine.mdp_poisons > 0);
  check_int "clean run has no poisons" 0
    clean.Machine.perf.Machine.mdp_poisons;
  check_str "output survives fault injection" clean.Machine.output
    faulted.Machine.output;
  check_int "insns survive fault injection" clean.Machine.perf.Machine.insns
    faulted.Machine.perf.Machine.insns;
  (* same plan on the in-order core: the ALAT path, not the LSQ path *)
  let inorder_faulted =
    Machine.run_sir_on Machine.Inorder ~faults:(inj ()) r.Pipeline.prog
  in
  check_str "in-order output survives too" clean.Machine.output
    inorder_faulted.Machine.output;
  check_int "no mdp to poison on inorder" 0
    inorder_faulted.Machine.perf.Machine.mdp_poisons

(* zero-fault stress points on the OoO backend must reproduce the
   unfaulted OoO baseline exactly (the sweep takes the unfaulted code
   path, not a faulted path that happens to inject nothing) *)
let test_ooo_zero_fault_reproduces_baseline () =
  Experiments.machine_config := Machine.default_config;
  let w = find "art" in
  let zero =
    [ { Experiments.sp_label = "0%";
        Experiments.sp_plan = Faults.null 1 } ]
  in
  let cells =
    Experiments.stress_workload ~quick:true ~seed:1 ~points:zero
      ~backend:Machine.Ooo w
  in
  check_bool "sweep produced cells" true (cells <> []);
  let baseline = Experiments.run_workload ~quick:true ~backend:Machine.Ooo w in
  List.iter
    (fun (c : Experiments.stress_cell) ->
      check_str "cells carry the backend" "ooo" c.Experiments.sc_backend;
      check_int "no adversary flips" 0 c.Experiments.sc_adv_flips;
      check_int "no injected faults" 0
        (c.Experiments.sc_m_flushes + c.Experiments.sc_m_invs);
      let (r : Experiments.run) =
        match c.Experiments.sc_variant with
        | "base" -> baseline.Experiments.base
        | "profile" -> baseline.Experiments.prof_spec
        | "heuristic" -> baseline.Experiments.heur_spec
        | "aggressive" -> baseline.Experiments.aggressive
        | v -> Alcotest.failf "unexpected stress variant %s" v
      in
      let p = r.Experiments.r_machine.Machine.perf in
      check_int
        (c.Experiments.sc_variant ^ ": cycles reproduce")
        p.Machine.cycles c.Experiments.sc_cycles;
      check_int
        (c.Experiments.sc_variant ^ ": insns reproduce")
        p.Machine.insns c.Experiments.sc_insns;
      check_int
        (c.Experiments.sc_variant ^ ": checks reproduce")
        p.Machine.checks c.Experiments.sc_checks;
      check_int
        (c.Experiments.sc_variant ^ ": misses reproduce")
        p.Machine.check_misses c.Experiments.sc_misses)
    cells

let suite =
  [ Alcotest.test_case "backend names + dispatch" `Quick test_backend_names;
    Alcotest.test_case "default engine is the in-order core" `Quick
      test_default_engine_is_inorder;
    Alcotest.test_case "LSQ replays + memory-dependence predictors" `Quick
      test_lsq_replay_and_predictors;
    Alcotest.test_case "injected faults poison the OoO predictor" `Quick
      test_faults_poison_predictor;
    Alcotest.test_case "OoO zero-fault stress reproduces baseline" `Slow
      test_ooo_zero_fault_reproduces_baseline ]
  @ List.map
      (fun w ->
        Alcotest.test_case
          ("in-order goldens via dispatch: " ^ wname w)
          `Slow (inorder_golden_dispatch w))
      (List.map find [ "art"; "equake"; "gzip" ])
  @ List.map
      (fun w ->
        Alcotest.test_case
          ("backend agreement: " ^ wname w)
          `Slow (agreement_workload w))
      Spec_workloads.Workloads.all
