(* Differential suite for the pre-compiled execution engines.

   The fast engines ({!Interp}'s pre-compiled interpreter, the {!Vm}
   threaded-code bytecode engine, and the resolved {!Machine} simulator)
   must be observationally identical to the seed's tree-walking
   semantics:

   - [Interp] and [Vm] vs [Interp_ref] (the frozen seed-semantics
     oracle): for every workload under every pipeline variant, program
     output, return value and every counter (steps, mem_loads,
     mem_stores, branches, calls, check_stmts, check_reloads) must
     agree exactly.

   - The compile-cache artifact carries the vm bytecode: a warm hit
     executes bytecode deserialized from disk (no re-lowering), and a
     corrupted vm section degrades to fresh lowering, never to a stale
     or wrong program.

   - [Machine]: every perf counter plus the program's return value must
     match the goldens below, which were captured from the seed
     simulator (pre-overhaul machine.ml) on the train inputs.

   - The parallel harness must be deterministic: rendered table rows
     from a [--jobs 4] sweep are byte-identical to the sequential run,
     and [Parpool] preserves submission order, nests, and propagates
     exceptions. *)

open Spec_ir
open Spec_prof
open Spec_driver

let find = Spec_workloads.Workloads.find
let wname w = w.Spec_workloads.Workloads.name

(* ------------------------------------------------------------------ *)
(* Parpool units                                                       *)
(* ------------------------------------------------------------------ *)

let with_jobs n f =
  Parpool.set_jobs n;
  Fun.protect ~finally:(fun () -> Parpool.set_jobs 1) f

let pool_order () =
  Alcotest.(check int) "inline by default" 1 (Parpool.get_jobs ());
  with_jobs 4 (fun () ->
      Alcotest.(check int) "jobs set" 4 (Parpool.get_jobs ());
      let xs = List.init 100 Fun.id in
      Alcotest.(check (list int)) "submission order preserved"
        (List.map (fun x -> x * x) xs)
        (Parpool.parmap (fun x -> x * x) xs);
      (* nested fan-out: a task awaiting subtasks must help, not deadlock *)
      let nested =
        Parpool.parmap
          (fun i ->
            List.fold_left ( + ) 0
              (Parpool.parmap (fun j -> i * j) (List.init 10 Fun.id)))
          xs
      in
      Alcotest.(check (list int)) "nested map" (List.map (fun i -> i * 45) xs)
        nested)

let pool_exn () =
  with_jobs 2 (fun () ->
      match Parpool.parmap (fun x -> if x = 3 then failwith "boom" else x)
              (List.init 8 Fun.id)
      with
      | _ -> Alcotest.fail "expected the task's exception to propagate"
      | exception Failure m -> Alcotest.(check string) "exn payload" "boom" m)

(* ------------------------------------------------------------------ *)
(* Interp vs Interp_ref differential                                   *)
(* ------------------------------------------------------------------ *)

let variants profile =
  [ "noopt", Pipeline.Noopt; "base", Pipeline.Base;
    "profile", Pipeline.Spec_profile profile;
    "heuristic", Pipeline.Spec_heuristic;
    "aggressive", Pipeline.Aggressive ]

(* compare one fast engine's result against the Interp_ref oracle *)
let check_vs_oracle ctx (a : Interp.result) (b : Interp_ref.result) =
  Alcotest.(check string) (ctx ^ ": output") b.Interp_ref.output
    a.Interp.output;
  (match a.Interp.ret, b.Interp_ref.ret with
   | Interp.Vint x, Interp_ref.Vint y ->
     Alcotest.(check int) (ctx ^ ": ret") y x
   | Interp.Vflt x, Interp_ref.Vflt y ->
     Alcotest.(check bool) (ctx ^ ": float ret") true (compare x y = 0)
   | _ -> Alcotest.fail (ctx ^ ": return-value kind mismatch"));
  let ca = a.Interp.counters and cb = b.Interp_ref.counters in
  List.iter
    (fun (n, got, want) ->
      Alcotest.(check int) (Printf.sprintf "%s: %s" ctx n) want got)
    [ "steps", ca.Interp.steps, cb.Interp_ref.steps;
      "mem_loads", ca.Interp.mem_loads, cb.Interp_ref.mem_loads;
      "mem_stores", ca.Interp.mem_stores, cb.Interp_ref.mem_stores;
      "branches", ca.Interp.branches, cb.Interp_ref.branches;
      "calls", ca.Interp.calls, cb.Interp_ref.calls;
      "check_stmts", ca.Interp.check_stmts, cb.Interp_ref.check_stmts;
      "check_reloads", ca.Interp.check_reloads, cb.Interp_ref.check_reloads ]

let check_engines_agree ctx prog =
  let b = Interp_ref.run prog in
  check_vs_oracle (ctx ^ "/tree") (Interp.run prog) b;
  check_vs_oracle (ctx ^ "/vm") (Vm.run prog) b

let diff_workload w () =
  let train_prog = Lower.compile (Spec_workloads.Workloads.train_source w) in
  let profile, _ = Profiler.profile train_prog in
  List.iter
    (fun (vname, v) ->
      let prog = Lower.compile (Spec_workloads.Workloads.train_source w) in
      let r = Pipeline.optimize ~edge_profile:(Some profile) prog v in
      check_engines_agree (wname w ^ "/" ^ vname) r.Pipeline.prog)
    (variants profile)

(* ------------------------------------------------------------------ *)
(* Machine goldens (captured from the seed simulator, train inputs)    *)
(* ------------------------------------------------------------------ *)

(* (insns, cycles, data_cycles, loads_plain, loads_adv, loads_spec,
    checks, check_misses, stores, branches, rse_stall_cycles,
    max_stacked_regs, ret_int) *)
let machine_goldens = [
  ("art", "noopt", (244128, 299132, 111876, 37348, 0, 0, 0, 0, 11406, 20063, 28, 101, 0));
  ("art", "base", (155829, 247360, 98421, 24221, 0, 0, 0, 0, 11406, 20063, 0, 80, 0));
  ("art", "profile", (155829, 228185, 98426, 14621, 4800, 0, 4800, 0, 11406, 20063, 0, 79, 0));
  ("art", "heuristic", (155829, 232455, 83516, 9701, 4920, 0, 9600, 4800, 11406, 20063, 0, 79, 0));
  ("art", "aggressive", (136629, 222855, 83036, 9701, 4920, 0, 0, 0, 11406, 20063, 0, 79, 0));
  ("ammp", "noopt", (249962, 297496, 103064, 38682, 0, 0, 0, 0, 10090, 14063, 334, 149, 0));
  ("ammp", "base", (167249, 254739, 89577, 29073, 0, 3, 0, 0, 10090, 14063, 124, 113, 0));
  ("ammp", "profile", (169409, 255837, 92457, 20433, 0, 1083, 8640, 2, 10090, 14063, 142, 116, 0));
  ("ammp", "heuristic", (183089, 212711, 31017, 11793, 0, 2163, 23040, 14400, 10090, 14063, 172, 121, 0));
  ("ammp", "aggressive", (137009, 169494, 31032, 11793, 0, 2163, 0, 0, 10090, 14063, 124, 113, 0));
  ("equake", "noopt", (91992, 97395, 24222, 13011, 0, 0, 0, 0, 4455, 4765, 714, 251, 0));
  ("equake", "base", (72875, 84019, 23245, 11560, 0, 0, 0, 0, 4455, 4765, 452, 192, 0));
  ("equake", "profile", (76475, 77195, 21090, 6520, 1440, 360, 5040, 3, 4455, 4765, 464, 192, 0));
  ("equake", "heuristic", (76475, 77195, 21090, 6520, 1440, 360, 5040, 3, 4455, 4765, 464, 192, 0));
  ("equake", "aggressive", (66395, 72123, 20365, 6520, 1440, 360, 0, 0, 4455, 4765, 436, 192, 0));
  ("gzip", "noopt", (299530, 234031, 30162, 35054, 0, 0, 0, 0, 5264, 34479, 11640, 106, 0));
  ("gzip", "base", (269072, 198986, 15654, 19258, 0, 583, 0, 0, 5264, 39356, 4656, 100, 0));
  ("gzip", "profile", (269654, 197874, 14220, 18094, 582, 583, 582, 0, 5264, 39356, 4656, 100, 0));
  ("gzip", "heuristic", (269654, 197874, 14220, 18094, 582, 583, 582, 0, 5264, 39356, 4656, 100, 0));
  ("gzip", "aggressive", (267326, 193218, 14220, 18094, 582, 583, 0, 0, 5264, 39356, 1164, 97, 0));
  ("mcf", "noopt", (617846, 448544, 82036, 96985, 0, 0, 0, 0, 22994, 69036, 52, 122, 0));
  ("mcf", "base", (459996, 365439, 51328, 71963, 0, 0, 0, 0, 22994, 75069, 0, 91, 0));
  ("mcf", "profile", (459996, 353505, 39394, 53996, 12000, 0, 5967, 0, 22994, 75069, 0, 91, 0));
  ("mcf", "heuristic", (459996, 353505, 39394, 53996, 12000, 0, 5967, 0, 22994, 75069, 0, 91, 0));
  ("mcf", "aggressive", (448062, 347538, 39394, 53996, 12000, 0, 0, 0, 22994, 75069, 0, 91, 0));
  ("parser", "noopt", (354405, 306484, 48867, 46858, 0, 0, 0, 0, 4788, 60574, 0, 70, 0));
  ("parser", "base", (339363, 310963, 42086, 41044, 0, 1, 0, 0, 4788, 78336, 0, 65, 0));
  ("parser", "profile", (340731, 309658, 40781, 38308, 1368, 1, 1368, 0, 4788, 78336, 0, 65, 0));
  ("parser", "heuristic", (340731, 309658, 40781, 38308, 1368, 1, 1368, 0, 4788, 78336, 0, 65, 0));
  ("parser", "aggressive", (335259, 306922, 40781, 38308, 1368, 1, 0, 0, 4788, 78336, 0, 62, 0));
  ("twolf", "noopt", (92124, 61932, 6862, 12518, 0, 0, 0, 0, 2368, 9926, 96, 108, 0));
  ("twolf", "base", (79608, 55886, 2982, 8943, 0, 0, 0, 0, 2368, 11688, 8, 97, 0));
  ("twolf", "profile", (79608, 54720, 2403, 3618, 3588, 0, 1737, 0, 2368, 11688, 0, 95, 0));
  ("twolf", "heuristic", (79608, 54720, 2403, 3618, 3588, 0, 1737, 0, 2368, 11688, 0, 95, 0));
  ("twolf", "aggressive", (72660, 51825, 2403, 3618, 3588, 0, 0, 0, 2368, 11688, 0, 86, 0));
  ("vpr", "noopt", (149926, 174721, 40524, 18528, 0, 0, 0, 0, 6256, 17273, 58, 113, 0));
  ("vpr", "base", (119907, 148888, 36010, 12273, 0, 0, 0, 0, 6256, 17273, 0, 86, 0));
  ("vpr", "profile", (125157, 151138, 36010, 10773, 750, 0, 3000, 0, 6256, 17273, 0, 86, 0));
  ("vpr", "heuristic", (125157, 151138, 36010, 10773, 750, 0, 3000, 0, 6256, 17273, 0, 86, 0));
  ("vpr", "aggressive", (119157, 148138, 36010, 10773, 750, 0, 0, 0, 6256, 17273, 0, 85, 0));
  ("cipher", "noopt", (11766, 8696, 1481, 1229, 0, 0, 0, 0, 531, 1607, 0, 62, 0));
  ("cipher", "base", (9549, 7326, 1153, 780, 0, 0, 0, 0, 531, 1607, 0, 50, 0));
  ("cipher", "profile", (9741, 6942, 769, 396, 192, 0, 192, 0, 531, 1607, 0, 50, 0));
  ("cipher", "heuristic", (9741, 6942, 769, 396, 192, 0, 192, 0, 531, 1607, 0, 50, 0));
  ("cipher", "aggressive", (8973, 6750, 769, 396, 192, 0, 0, 0, 531, 1607, 0, 50, 0));
  ("ctsel", "noopt", (15859, 10134, 1066, 1838, 0, 0, 0, 0, 499, 1221, 0, 62, 0));
  ("ctsel", "base", (11976, 7802, 577, 1452, 0, 0, 0, 0, 499, 1221, 0, 50, 0));
  ("ctsel", "profile", (11976, 7802, 577, 876, 288, 0, 288, 0, 499, 1221, 0, 49, 0));
  ("ctsel", "heuristic", (11976, 7802, 577, 876, 288, 0, 288, 0, 499, 1221, 0, 49, 0));
  ("ctsel", "aggressive", (11400, 7514, 577, 876, 288, 0, 0, 0, 499, 1221, 0, 48, 0));
]

let tuple_to_list (a, b, c, d, e, f, g, h, i, j, k, l, m) =
  [ a; b; c; d; e; f; g; h; i; j; k; l; m ]

let golden_workload w () =
  let open Spec_machine in
  Experiments.machine_config := Machine.default_config;
  let b = Experiments.run_workload ~quick:true w in
  List.iter
    (fun (vname, (r : Experiments.run)) ->
      let p = r.Experiments.r_machine.Machine.perf in
      let got =
        [ p.Machine.insns; p.Machine.cycles; p.Machine.data_cycles;
          p.Machine.loads_plain; p.Machine.loads_adv; p.Machine.loads_spec;
          p.Machine.checks; p.Machine.check_misses; p.Machine.stores;
          p.Machine.branches; p.Machine.rse_stall_cycles;
          p.Machine.max_stacked_regs;
          r.Experiments.r_machine.Machine.ret_int ]
      in
      let want =
        tuple_to_list
          (List.assoc vname
             (List.filter_map
                (fun (n, v, t) -> if n = wname w then Some (v, t) else None)
                machine_goldens))
      in
      Alcotest.(check (list int))
        (Printf.sprintf "%s/%s machine counters" (wname w) vname)
        want got)
    [ "noopt", b.Experiments.noopt; "base", b.Experiments.base;
      "profile", b.Experiments.prof_spec;
      "heuristic", b.Experiments.heur_spec;
      "aggressive", b.Experiments.aggressive ]

(* ------------------------------------------------------------------ *)
(* vm bytecode in the compile-cache artifact                           *)
(* ------------------------------------------------------------------ *)

let fresh_dir tag =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "specvm-test-%d-%s" (Unix.getpid ()) tag)
  in
  (match Sys.readdir dir with
   | files -> Array.iter (fun f -> Sys.remove (Filename.concat dir f)) files
   | exception Sys_error _ -> ());
  dir

let vm_cache_src =
  {|
int A[32];
int main(){
  int i; int s; s = 0;
  for (i = 0; i < 32; i = i + 1) A[i] = i * 2;
  for (i = 0; i < 32; i = i + 1) s = s + A[i];
  print_int(s);
  return 0;
}
|}

let replace ~sub ~by s =
  let ls = String.length s and lsub = String.length sub in
  let buf = Buffer.create ls in
  let i = ref 0 in
  while !i <= ls - lsub do
    if String.sub s !i lsub = sub then begin
      Buffer.add_string buf by;
      i := !i + lsub
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.add_string buf (String.sub s !i (ls - !i));
  Buffer.contents buf

let vm_cache_roundtrip () =
  let c = Spec_fdo.Cache.create (fresh_dir "roundtrip") in
  let compile () =
    Pipeline.compile_and_optimize ~cache:c vm_cache_src Pipeline.Base
  in
  (* an uncached compile lowers bytecode on demand only *)
  let uncached =
    Pipeline.compile_and_optimize vm_cache_src Pipeline.Base
  in
  Alcotest.(check bool) "uncached vm is lowered on demand" false
    (Lazy.is_val uncached.Pipeline.vm);
  (* storing the artifact serializes — and therefore forces — the
     bytecode on the cold path *)
  let cold = compile () in
  Alcotest.(check bool) "cold is not from cache" false
    cold.Pipeline.from_cache;
  Alcotest.(check bool) "cold store forces the bytecode" true
    (Lazy.is_val cold.Pipeline.vm);
  let cold_vm = Vm.run_program (Lazy.force cold.Pipeline.vm) in
  let warm = compile () in
  Alcotest.(check bool) "warm is from cache" true warm.Pipeline.from_cache;
  (* the artifact carried valid bytecode, so the warm vm is pre-forced:
     no lowering happened on the hit path *)
  Alcotest.(check bool) "warm vm comes straight from the artifact" true
    (Lazy.is_val warm.Pipeline.vm);
  let warm_vm = Vm.run_program (Lazy.force warm.Pipeline.vm) in
  check_vs_oracle "vm-cache/warm" warm_vm (Interp_ref.run warm.Pipeline.prog);
  Alcotest.(check string) "warm vm output matches cold vm"
    cold_vm.Interp.output warm_vm.Interp.output

let vm_cache_corrupt_section () =
  let dir = fresh_dir "corrupt-vm" in
  let c = Spec_fdo.Cache.create dir in
  let cold =
    Pipeline.compile_and_optimize ~cache:c vm_cache_src Pipeline.Base
  in
  ignore (Vm.run_program (Lazy.force cold.Pipeline.vm) : Interp.result);
  (* mangle only the vm section's version tag behind the cache's back:
     the artifact as a whole still parses, so the entry still hits, but
     the bytecode must be rejected and re-lowered from the program *)
  (match Sys.readdir dir with
   | [| f |] ->
     let path = Filename.concat dir f in
     let ic = open_in_bin path in
     let blob = really_input_string ic (in_channel_length ic) in
     close_in ic;
     let mangled = replace ~sub:"specvm/2" ~by:"specvm/9" blob in
     Alcotest.(check bool) "mangle changed the artifact" false
       (mangled = blob);
     let oc = open_out_bin path in
     output_string oc mangled;
     close_out oc
   | _ -> Alcotest.fail "expected exactly one artifact");
  let warm =
    Pipeline.compile_and_optimize ~cache:c vm_cache_src Pipeline.Base
  in
  Alcotest.(check bool) "mangled vm section still hits" true
    warm.Pipeline.from_cache;
  Alcotest.(check bool) "rejected bytecode falls back to lazy lowering"
    false
    (Lazy.is_val warm.Pipeline.vm);
  check_vs_oracle "vm-cache/relowered"
    (Vm.run_program (Lazy.force warm.Pipeline.vm))
    (Interp_ref.run warm.Pipeline.prog)

(* ------------------------------------------------------------------ *)
(* --jobs determinism                                                  *)
(* ------------------------------------------------------------------ *)

let render_tables (bs : Experiments.bench_result list) =
  String.concat "\n"
    (List.concat_map
       (fun b ->
         [ Experiments.fig10_row b; Experiments.fig11_row b;
           Experiments.fig12_row b; Experiments.heuristics_row b;
           Experiments.rse_row b ])
       bs)

let jobs_determinism () =
  let ws = List.map find [ "art"; "equake"; "mcf" ] in
  let seq = Experiments.run_workloads ~quick:true ws in
  let par = with_jobs 4 (fun () -> Experiments.run_workloads ~quick:true ws) in
  Alcotest.(check string) "table rows identical under --jobs 4"
    (render_tables seq) (render_tables par)

let suite =
  [ Alcotest.test_case "parpool: order + nested fan-out" `Quick pool_order;
    Alcotest.test_case "parpool: exception propagation" `Quick pool_exn;
    Alcotest.test_case "vm artifact cache round trip" `Quick
      vm_cache_roundtrip;
    Alcotest.test_case "vm artifact corrupt section re-lowers" `Quick
      vm_cache_corrupt_section ]
  @ List.map
      (fun w ->
        Alcotest.test_case
          ("interp differential: " ^ wname w)
          `Slow (diff_workload w))
      Spec_workloads.Workloads.all
  @ List.map
      (fun w ->
        Alcotest.test_case
          ("machine goldens: " ^ wname w)
          `Slow (golden_workload w))
      Spec_workloads.Workloads.all
  @ [ Alcotest.test_case "harness deterministic under --jobs" `Slow
        jobs_determinism ]
