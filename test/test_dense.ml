(* Unit tests for the dense optimizer internals introduced with the
   parallel pipeline: the domain-local Scratch buffer pools, Build_ssa's
   variable interner, the formal-to-entry-version fast path shared with
   SSAPRE, and a fuzz differential pinning the dense SSAPRE to the
   sequential pipeline's observable behaviour. *)

open Spec_ir
open Spec_cfg
open Spec_driver

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ---- Scratch pools ---- *)

(* Returned buffers are recycled: a give followed by a take of no larger
   capacity hands the same array back, dirty. *)
let test_scratch_ints_reuse () =
  let a = Scratch.take_ints 100 in
  check_bool "capacity covers request" true (Array.length a >= 100);
  Array.fill a 0 100 31337;
  Scratch.give_ints a;
  let b = Scratch.take_ints 50 in
  check_bool "pooled buffer recycled" true (a == b);
  check_int "handed out dirty (callers must init)" 31337 b.(0);
  Scratch.give_ints b;
  (* a request beyond every pooled capacity allocates fresh *)
  let big = Scratch.take_ints (Array.length a + 1) in
  check_bool "oversized request is a fresh buffer" true (not (big == a));
  Scratch.give_ints big

(* Byte rows come back zeroed over the requested prefix — the bitset
   starting state — even when the recycled buffer was dirty. *)
let test_scratch_bytes_zeroed () =
  let b = Scratch.take_bytes 64 in
  Bytes.fill b 0 64 '\001';
  Scratch.give_bytes b;
  let c = Scratch.take_bytes 64 in
  check_bool "pooled buffer recycled" true (b == c);
  let all_zero = ref true in
  for i = 0 to 63 do
    if Bytes.get c i <> '\000' then all_zero := false
  done;
  check_bool "requested prefix zeroed" true !all_zero;
  Scratch.give_bytes c

(* The pool is bounded: giving back more buffers than [max_pooled] must
   not retain them all (the excess is dropped for the GC).  Observable
   as: after over-filling, at most max_pooled distinct arrays come back
   out before a fresh allocation appears. *)
let test_scratch_pool_bounded () =
  let given = List.init 12 (fun _ -> Scratch.take_ints 8) in
  (* the takes above may alias pooled buffers; force 12 distinct ones *)
  let distinct = List.map (fun _ -> Array.make 8 0) given in
  List.iter Scratch.give_ints distinct;
  let back = List.init 12 (fun _ -> Scratch.take_ints 8) in
  let recycled =
    List.length
      (List.filter (fun b -> List.exists (fun d -> d == b) distinct) back)
  in
  check_bool "at most max_pooled buffers retained" true (recycled <= 8);
  List.iter Scratch.give_ints back

(* ---- Build_ssa interner ---- *)

let two_func_src =
  "int g;\n\
   int add(int x, int y) {\n\
  \  int t; t = x + y + g;\n\
  \  return t;\n\
   }\n\
   int main() {\n\
  \  g = 7;\n\
  \  int i; int s; s = 0;\n\
  \  for (i = 0; i < 4; i++) s = s + add(i, i + 1);\n\
  \  print_int(s);\n\
  \  return 0;\n\
   }\n"

(* Interned ids are dense (0 .. n_loc-1), the two directions of the
   mapping agree, and every formal is recorded as defined at entry. *)
let test_interner_dense_ids () =
  let prog = Lower.compile two_func_src in
  let f = Hashtbl.find prog.Sir.funcs "add" in
  let it = Spec_ssa.Build_ssa.collect_vars prog f in
  check_bool "saw the formals and locals" true
    (it.Spec_ssa.Build_ssa.n_loc >= 3);
  for l = 0 to it.Spec_ssa.Build_ssa.n_loc - 1 do
    let v = it.Spec_ssa.Build_ssa.locals.(l) in
    check_int
      (Printf.sprintf "local_of inverts locals at %d" l)
      l
      it.Spec_ssa.Build_ssa.local_of.(v)
  done;
  List.iter
    (fun formal ->
      let l = it.Spec_ssa.Build_ssa.local_of.(formal) in
      check_bool "formal interned" true (l >= 0);
      check_bool "formal defined at entry" true
        (List.mem Sir.entry_bid it.Spec_ssa.Build_ssa.def_blocks.(l)))
    f.Sir.fformals;
  (* interning the same variable twice is stable *)
  let v0 = it.Spec_ssa.Build_ssa.locals.(0) in
  check_int "re-intern is stable" 0 (Spec_ssa.Build_ssa.intern it v0);
  Spec_ssa.Build_ssa.release it

(* build_func's formal map points each original formal at its version-1
   variable. *)
let test_formals_v1 () =
  let prog = Lower.compile two_func_src in
  Sir.iter_funcs
    (fun f -> ignore (Cfg_utils.split_critical_edges f : int))
    prog;
  let f = Hashtbl.find prog.Sir.funcs "add" in
  let bt = Spec_ssa.Build_ssa.build_func prog f in
  check_int "one entry per formal" (List.length f.Sir.fformals)
    (List.length bt.Spec_ssa.Build_ssa.formals_v1);
  List.iter
    (fun (orig, v1) ->
      check_bool "mapped from a formal" true (List.mem orig f.Sir.fformals);
      let v = Symtab.var prog.Sir.syms v1 in
      check_int "entry version has vver = 1" 1 v.Symtab.vver;
      check_int "entry version descends from the formal" orig
        v.Symtab.vorig)
    bt.Spec_ssa.Build_ssa.formals_v1

(* ---- SSAPRE end-version rows: formals fast path vs symtab scan ---- *)

(* Ssapre.run_func's [?formals] fast path (fed by Build_ssa) and its
   symtab-scan fallback must agree exactly: same program text, same
   stats.  This is the differential for the dense end-version table's
   two entry-version discovery paths. *)
let prep src =
  let prog = Lower.compile src in
  let annot = Spec_alias.Annotate.run prog in
  Spec_spec.Flags.assign prog annot Spec_spec.Flags.Heuristic_spec;
  Sir.iter_funcs
    (fun f -> ignore (Cfg_utils.split_critical_edges f : int))
    prog;
  (prog, annot)

let test_ssapre_formals_differential () =
  let config =
    Spec_ssapre.Ssapre.default_config Spec_spec.Flags.Heuristic_spec
  in
  let run ~use_formals =
    let prog, annot = prep two_func_src in
    let stats = ref Spec_ssapre.Ssapre.zero_stats in
    Sir.iter_funcs
      (fun f ->
        let bt = Spec_ssa.Build_ssa.build_func prog f in
        let formals =
          if use_formals then Some bt.Spec_ssa.Build_ssa.formals_v1
          else None
        in
        let st = Spec_ssapre.Ssapre.run_func ?formals prog annot config f in
        stats := Spec_ssapre.Ssapre.add_stats !stats st)
      prog;
    (Pp.prog_to_string prog, !stats)
  in
  let text_fast, stats_fast = run ~use_formals:true in
  let text_scan, stats_scan = run ~use_formals:false in
  check_str "identical program text" text_scan text_fast;
  check_bool "identical stats" true (stats_scan = stats_fast)

(* ---- Fuzz differential: dense SSAPRE vs observable behaviour ---- *)

(* Random multi-function programs (formals, globals, aliasing stores)
   through the full pipeline: every variant must preserve the
   unoptimized output, and compiling twice must produce byte-identical
   programs (the dense structures introduce no iteration-order
   dependence). *)
let random_two_func_prog : string QCheck.Gen.t =
  QCheck.Gen.(
    let* n_iters = int_range 3 10 in
    let* alias_pct = int_range 0 100 in
    let* use_helper = bool in
    let helper_call =
      if use_helper then "s = s + bump(a[i % 4], i);" else "s = s + a[i % 4];"
    in
    return
      (Printf.sprintf
         "int a[4]; int b[4];\n\
          int bump(int x, int k) { int t; t = x + k; return t; }\n\
          int main(){ int* q; int s; s = 0; q = &b[0];\n\
          for (int i = 0; i < %d; i++) {\n\
          if (rnd(100) < %d) q = &a[i %% 4]; else q = &b[i %% 4];\n\
          *q = i; %s s = s + a[0]; }\n\
          print_int(s); print_int(a[0]+a[1]+a[2]+a[3]);\n\
          print_int(b[0]+b[1]+b[2]+b[3]); return 0; }"
         n_iters alias_pct helper_call))

let run_prog prog = Spec_prof.Interp.run prog

let prop_dense_differential =
  QCheck.Test.make ~count:40
    ~name:"dense pipeline preserves behaviour and is deterministic"
    (QCheck.make ~print:Fun.id random_two_func_prog)
    (fun src ->
      let baseline = run_prog (Lower.compile src) in
      List.for_all
        (fun variant ->
          let r1 = Pipeline.compile_and_optimize src variant in
          let r2 = Pipeline.compile_and_optimize src variant in
          let out = run_prog r1.Pipeline.prog in
          out.Spec_prof.Interp.output = baseline.Spec_prof.Interp.output
          && Pp.prog_to_string r1.Pipeline.prog
             = Pp.prog_to_string r2.Pipeline.prog)
        [ Pipeline.Base; Pipeline.Spec_heuristic ])

(* ---- bench schema: the optional "compile" section ---- *)

(* A real (quick) compile-throughput cell must satisfy the pinned
   schema, assert byte-identical parallel output, and a malformed cell
   must be rejected. *)
let test_bench_json_compile_section () =
  let w = Spec_workloads.Workloads.find "vpr" in
  let cells = Experiments.run_compile_bench ~quick:true ~jobs:2 [ w ] in
  List.iter
    (fun (c : Experiments.compile_result) ->
      check_bool "parallel output byte-identical" true
        c.Experiments.c_identical)
    cells;
  let dump =
    Bench_json.dump ~date:"2026-08-07" ~inputs:"train" ~jobs:2
      ~harness_wall_s:0.1
      ~compile:(Bench_json.compile_json cells)
      []
  in
  (match Bench_json.check dump with
   | Ok () -> ()
   | Error e -> Alcotest.fail ("compile section rejected: " ^ e));
  let broken =
    Bench_json.dump ~date:"2026-08-07" ~inputs:"train" ~jobs:2
      ~harness_wall_s:0.1
      ~compile:
        "{\"jobs\":2,\"total_speedup\":1.0,\"workloads\":[{\"workload\":\"w\"}]}"
      []
  in
  (match Bench_json.check broken with
   | Ok () -> Alcotest.fail "accepted malformed compile cell"
   | Error _ -> ())

let suite =
  [ Alcotest.test_case "scratch ints recycle dirty" `Quick
      test_scratch_ints_reuse;
    Alcotest.test_case "scratch bytes recycle zeroed" `Quick
      test_scratch_bytes_zeroed;
    Alcotest.test_case "scratch pool bounded" `Quick
      test_scratch_pool_bounded;
    Alcotest.test_case "interner dense ids" `Quick test_interner_dense_ids;
    Alcotest.test_case "build_func formals_v1" `Quick test_formals_v1;
    Alcotest.test_case "ssapre formals fast path == symtab scan" `Quick
      test_ssapre_formals_differential;
    QCheck_alcotest.to_alcotest prop_dense_differential;
    Alcotest.test_case "bench json compile section" `Quick
      test_bench_json_compile_section ]
