int A[100];
int B[100];
int sum;
int main() {
  int i;
  int j;
  i = 0;
  while (i < 100) { A[i] = i; B[i] = i + i; i = i + 1; }
  sum = 0;
  j = 0;
  while (j < 100) { sum = sum + A[j] + B[j]; j = j + 1; }
  print_int(sum);
  return 0;
}
