(* Tests for the misspeculation stress layer: the splittable RNG, fault
   plans and injectors, ALAT interference, the stress sweep's
   correctness/determinism/degradation guarantees, and the pinned
   [specpre-bench/7] JSON schema (golden check on the committed
   baselines and on a freshly emitted dump). *)

open Spec_driver
open Spec_stress

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ---- splittable RNG ---- *)

let draws rng n = List.init n (fun _ -> Srng.bits rng)

let test_srng_determinism () =
  let a = Srng.of_path 1 [ "w"; "variant"; "machine" ] in
  let b = Srng.of_path 1 [ "w"; "variant"; "machine" ] in
  check_bool "same path, same stream" true (draws a 32 = draws b 32);
  let c = Srng.of_path 1 [ "w"; "variant"; "interp" ] in
  check_bool "sibling label, different stream" false (draws a 32 = draws c 32);
  let d = Srng.of_path 2 [ "w"; "variant"; "machine" ] in
  check_bool "different seed, different stream" false (draws b 32 = draws d 32)

let test_srng_split_independence () =
  (* a split stream must not depend on how many draws the parent makes
     afterwards (pool workers interleave arbitrarily) *)
  let p1 = Srng.of_path 7 [ "root" ] in
  let s1 = Srng.split p1 "child" in
  ignore (draws p1 100);
  let p2 = Srng.of_path 7 [ "root" ] in
  let s2 = Srng.split p2 "child" in
  check_bool "split stream is draw-count independent" true
    (draws s1 16 = draws s2 16);
  check_bool "split differs from parent" false (draws s1 16 = draws p2 16)

let test_srng_below_range () =
  let rng = Srng.of_path 3 [ "range" ] in
  let seen = Array.make 7 false in
  for _ = 1 to 1000 do
    let v = Srng.below rng 7 in
    check_bool "below in range" true (v >= 0 && v < 7);
    seen.(v) <- true
  done;
  check_bool "below covers the range" true (Array.for_all Fun.id seen)

(* ---- fault plans ---- *)

let test_faults_parse_roundtrip () =
  List.iter
    (fun spec ->
      match Faults.parse ~seed:1 spec with
      | Ok p -> check_str "round trip" spec (Faults.to_string p)
      | Error m -> Alcotest.fail m)
    [ "flush=64"; "inv=10000"; "flush=8,inv=500000,alat=4,adv=invert";
      "adv=drop:25000" ];
  (match Faults.parse ~seed:1 "" with
   | Ok p -> check_bool "empty spec is the null plan" true (Faults.is_null p)
   | Error m -> Alcotest.fail m);
  List.iter
    (fun bad ->
      match Faults.parse ~seed:1 bad with
      | Ok _ -> Alcotest.failf "accepted bad spec %S" bad
      | Error _ -> ())
    [ "flush"; "flush=x"; "adv=maybe"; "bogus=1" ]

let test_injector_gating () =
  (* adversarial-only plans have no runtime fault source: the zero point
     and the adversarial point must take the exact unfaulted code path *)
  let none p = Faults.injector_opt p ~scope:[ "t" ] = None in
  check_bool "null plan: no injector" true (none (Faults.null 1));
  check_bool "adversarial-only plan: no injector" true
    (none { (Faults.null 1) with Faults.adversary = Faults.Adv_invert });
  check_bool "alat-only plan: no injector" true
    (none { (Faults.null 1) with Faults.alat_entries = Some 4 });
  check_bool "flush plan: injector" false
    (none { (Faults.null 1) with Faults.flush_period = 8 });
  check_bool "chaos plan: injector" false
    (none { (Faults.null 1) with Faults.inv_ppm = 10_000 })

let test_advance_semantics () =
  let nop_flush () = () and nop_inv _ = () in
  let plan = { (Faults.null 1) with Faults.flush_period = 4 } in
  let inj = Faults.injector plan ~scope:[ "adv" ] in
  Faults.advance inj ~upto:8 ~flush:nop_flush ~invalidate:nop_inv;
  check_int "flush every 4 time units" 2 (Faults.flushes inj);
  (* re-advancing to the same mark must not double-fire *)
  Faults.advance inj ~upto:8 ~flush:nop_flush ~invalidate:nop_inv;
  check_int "monotone mark" 2 (Faults.flushes inj);
  Faults.advance inj ~upto:12 ~flush:nop_flush ~invalidate:nop_inv;
  check_int "next period fires" 3 (Faults.flushes inj);
  (* certain chaos: one invalidation event per time unit *)
  let chaos = { (Faults.null 1) with Faults.inv_ppm = 1_000_000 } in
  let inj2 = Faults.injector chaos ~scope:[ "chaos" ] in
  Faults.advance inj2 ~upto:10 ~flush:nop_flush ~invalidate:nop_inv;
  check_int "ppm=100% fires every time unit" 10 (Faults.invalidations inj2)

let test_alat_interference () =
  let open Spec_machine in
  let t = Alat.create ~entries:8 ~assoc:2 () in
  Alat.insert t ~frame:0 ~reg:1 ~addr:0;
  Alat.insert t ~frame:0 ~reg:2 ~addr:8;
  Alat.insert t ~frame:0 ~reg:3 ~addr:24;
  check_int "three live entries" 3 (Alat.live t);
  (* certain chaos drops exactly one live entry per elapsed cycle *)
  let chaos = { (Faults.null 5) with Faults.inv_ppm = 1_000_000 } in
  Alat.set_faults t (Faults.injector_opt chaos ~scope:[ "alat-test" ]);
  Alat.interfere t ~now:2;
  check_int "chaos dropped one entry per cycle" 1 (Alat.live t);
  (* a flush empties the table outright *)
  let fl = { (Faults.null 5) with Faults.flush_period = 1 } in
  Alat.set_faults t (Faults.injector_opt fl ~scope:[ "alat-flush" ]);
  Alat.insert t ~frame:0 ~reg:4 ~addr:32;
  Alat.interfere t ~now:1;
  check_int "flush empties the table" 0 (Alat.live t);
  check_bool "flushed entries fail their check" false
    (Alat.check t ~frame:0 ~reg:4)

(* ---- the sweep: correctness, determinism, graceful degradation ---- *)

let mini_points seed =
  let p = Faults.null seed in
  [ { Experiments.sp_label = "0%"; Experiments.sp_plan = p };
    { Experiments.sp_label = "inv-10%";
      Experiments.sp_plan = { p with Faults.inv_ppm = 100_000 } };
    { Experiments.sp_label = "adv-invert";
      Experiments.sp_plan = { p with Faults.adversary = Faults.Adv_invert } } ]

(* one small sweep, shared by the tests below; art is the cheapest
   workload whose profile variant both speculates and can be forced to
   misspeculate by the adversary *)
let mini_sweep =
  lazy
    (Experiments.stress_workload ~quick:true ~seed:1
       ~points:(mini_points 1)
       (Spec_workloads.Workloads.find "art"))

let cell cells point variant =
  match
    List.find_opt
      (fun c ->
        c.Experiments.sc_point = point && c.Experiments.sc_variant = variant)
      cells
  with
  | Some c -> c
  | None -> Alcotest.failf "missing stress cell %s/%s" point variant

let test_stress_zero_fault_reproduces_baseline () =
  let cells = Lazy.force mini_sweep in
  let c = cell cells "0%" "profile" in
  (* an independent honest compile and unfaulted run must produce the
     same machine counters as the sweep's zero-fault row *)
  let open Spec_workloads in
  let w = Workloads.find "art" in
  let profile, _ =
    Spec_prof.Profiler.profile
      (Spec_ir.Lower.compile (Workloads.train_source w))
  in
  let prog = Spec_ir.Lower.compile (w.Workloads.source w.Workloads.train) in
  let r =
    Pipeline.optimize ~edge_profile:(Some profile) prog
      (Pipeline.Spec_profile profile)
  in
  let mp = Spec_codegen.Codegen.lower r.Pipeline.prog in
  ignore (Spec_codegen.Schedule.run mp : Spec_codegen.Schedule.stats);
  let m =
    Spec_machine.Machine.run_resolved ~config:!Experiments.machine_config
      (Spec_machine.Machine.resolve mp)
  in
  let p = m.Spec_machine.Machine.perf in
  check_int "cycles reproduce" p.Spec_machine.Machine.cycles
    c.Experiments.sc_cycles;
  check_int "insns reproduce" p.Spec_machine.Machine.insns
    c.Experiments.sc_insns;
  check_int "checks reproduce" p.Spec_machine.Machine.checks
    c.Experiments.sc_checks;
  check_int "misses reproduce" p.Spec_machine.Machine.check_misses
    c.Experiments.sc_misses;
  check_int "no adversary flips at the zero point" 0
    c.Experiments.sc_adv_flips;
  check_int "no injected machine faults at the zero point" 0
    (c.Experiments.sc_m_flushes + c.Experiments.sc_m_invs);
  check_int "no injected interp faults at the zero point" 0
    (c.Experiments.sc_i_flushes + c.Experiments.sc_i_invs)

let test_stress_graceful_degradation () =
  let cells = Lazy.force mini_sweep in
  let zero = cell cells "0%" "profile" in
  let chaos = cell cells "inv-10%" "profile" in
  let adv = cell cells "adv-invert" "profile" in
  check_bool "baseline speculates" true (zero.Experiments.sc_checks > 0);
  check_int "baseline has no misses" 0 zero.Experiments.sc_misses;
  (* chaos invalidation turns hits into misses and costs recovery
     cycles, but never correctness (the sweep itself asserts
     bit-identical output at every point) *)
  check_bool "chaos induces check misses" true
    (chaos.Experiments.sc_misses > 0);
  check_bool "hit rate degrades under chaos" true
    (Experiments.stress_hit_rate chaos < Experiments.stress_hit_rate zero);
  check_bool "recovery costs cycles" true
    (chaos.Experiments.sc_cycles >= zero.Experiments.sc_cycles);
  check_bool "interp recovery reloads fire" true
    (chaos.Experiments.sc_i_reloads > 0);
  (* the adversarial profile forces speculation across real aliases:
     more checks than the honest compile, and recovery at the wrong
     ones *)
  check_bool "adversary flipped speculation decisions" true
    (adv.Experiments.sc_adv_flips > 0);
  check_bool "adversary widens speculation" true
    (adv.Experiments.sc_checks > zero.Experiments.sc_checks);
  check_bool "adversary forces recovery" true (adv.Experiments.sc_misses > 0);
  check_bool "interp recovers from the wrong profile too" true
    (adv.Experiments.sc_i_reloads > 0)

let test_stress_jobs_determinism () =
  (* the sweep must be byte-identical for any pool width: fault streams
     are derived from scope labels, never from scheduling order *)
  let sweep () =
    Experiments.stress_workload ~quick:true ~seed:1 ~points:(mini_points 1)
      (Spec_workloads.Workloads.find "art")
  in
  let saved = Parpool.get_jobs () in
  let with_jobs n f =
    Fun.protect
      ~finally:(fun () -> Parpool.set_jobs saved)
      (fun () ->
        Parpool.set_jobs n;
        f ())
  in
  let seq = with_jobs 1 sweep in
  let par = with_jobs 2 sweep in
  check_bool "identical cells under --jobs 1 and --jobs 2" true (seq = par);
  check_bool "sweep matches the memoized run" true
    (seq = Lazy.force mini_sweep)

(* ---- the pinned bench JSON schema ---- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* substring replacement, for mangling a valid dump into invalid ones *)
let replace ~sub ~by s =
  let ls = String.length s and lsub = String.length sub in
  let buf = Buffer.create ls in
  let i = ref 0 in
  while !i <= ls - lsub do
    if String.sub s !i lsub = sub then begin
      Buffer.add_string buf by;
      i := !i + lsub
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.add_string buf (String.sub s !i (ls - !i));
  Buffer.contents buf

let test_bench_json_schema_committed () =
  (* golden check: every committed BENCH_<date>.json baseline must parse
     and validate against the pinned specpre-bench/7 schema *)
  let dir = ".." in
  let baselines =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 6
           && String.sub f 0 6 = "BENCH_"
           && Filename.check_suffix f ".json")
  in
  check_bool "at least one committed baseline" true (baselines <> []);
  List.iter
    (fun f ->
      match Bench_json.check (read_file (Filename.concat dir f)) with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: %s" f msg)
    baselines

(* hand-built section cells so the dump exercises the engines and mdp
   validators without paying for a real throughput sweep *)
let mini_engine_cells =
  [ { Experiments.e_wname = "art"; e_steps = 1000; e_insns = 2000;
      e_ref_s = 0.01; e_tree_s = 0.004; e_vm_s = 0.001 } ]

let mini_mdp_cells =
  [ { Experiments.md_wname = "art";
      md_policy = Spec_machine.Machine.Mdp_none; md_cycles = 100;
      md_insns = 200; md_replays = 3 };
    { Experiments.md_wname = "art";
      md_policy = Spec_machine.Machine.Mdp_store_set; md_cycles = 90;
      md_insns = 200; md_replays = 1 } ]

let mini_safety_cells =
  [ { Experiments.sf_wname = "cipher"; sf_variant = "heuristic";
      sf_verdict = "leaks"; sf_confirmed = 1; sf_plausible = 0;
      sf_sites = [ "CONFIRMED spec-addr round:spec-addr:(sbox + (idx * 8))#0" ];
      sf_checks = 480; sf_reloads = 12; sf_reload_steps = 9000;
      sf_deopts = 3; sf_deopt_steps = 7000 };
    { Experiments.sf_wname = "ctsel"; sf_variant = "profile";
      sf_verdict = "safe"; sf_confirmed = 0; sf_plausible = 0;
      sf_sites = []; sf_checks = 288; sf_reloads = 0; sf_reload_steps = 5000;
      sf_deopts = 0; sf_deopt_steps = 5000 } ]

let fresh_dump () =
  Bench_json.dump ~date:"2026-08-07" ~inputs:"train" ~jobs:1
    ~harness_wall_s:0.123
    ~engines:(Bench_json.engines_json mini_engine_cells)
    ~mdp:(Bench_json.mdp_json mini_mdp_cells)
    ~stress:(Bench_json.stress_json ~seed:1 (Lazy.force mini_sweep))
    ~safety:(Bench_json.safety_json ~seed:1 mini_safety_cells)
    []

let test_bench_json_schema_stress_section () =
  match Bench_json.check (fresh_dump ()) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "fresh dump does not validate: %s" msg

let test_bench_json_rejects_drift () =
  let dump = fresh_dump () in
  List.iter
    (fun (what, bad) ->
      match Bench_json.check bad with
      | Ok () -> Alcotest.failf "schema drift accepted: %s" what
      | Error _ -> ())
    [ "renamed stress counter",
      replace ~sub:"\"check_misses\"" ~by:"\"cheks\"" dump;
      "unknown schema tag",
      replace ~sub:"specpre-bench/7" ~by:"specpre-bench/9" dump;
      "pre-shards schema tag",
      replace ~sub:"specpre-bench/7" ~by:"specpre-bench/6" dump;
      "pre-safety schema tag",
      replace ~sub:"specpre-bench/7" ~by:"specpre-bench/5" dump;
      "pre-engine schema tag",
      replace ~sub:"specpre-bench/7" ~by:"specpre-bench/3" dump;
      "pre-backend schema tag",
      replace ~sub:"specpre-bench/7" ~by:"specpre-bench/2" dump;
      "unknown safety verdict",
      replace ~sub:"\"verdict\":\"leaks\"" ~by:"\"verdict\":\"spooky\"" dump;
      "renamed safety counter",
      replace ~sub:"\"deopt_steps\"" ~by:"\"deopt_step\"" dump;
      "int where site string expected",
      replace ~sub:"\"sites\":[]" ~by:"\"sites\":[7]" dump;
      "missing backend dimension",
      replace ~sub:"\"backend\":\"inorder\"," ~by:"" dump;
      "unknown backend name",
      replace ~sub:"\"backend\":\"inorder\"" ~by:"\"backend\":\"vliw\"" dump;
      "unknown mdp policy name",
      replace ~sub:"\"mdp\":\"store-set\"" ~by:"\"mdp\":\"psychic\"" dump;
      "renamed engine counter",
      replace ~sub:"\"vm_wall_s\"" ~by:"\"vm_walls\"" dump;
      "string where int expected",
      replace ~sub:"\"seed\":1" ~by:"\"seed\":\"one\"" dump;
      "truncated document", String.sub dump 0 (String.length dump - 4) ]

let suite =
  [ Alcotest.test_case "srng determinism" `Quick test_srng_determinism;
    Alcotest.test_case "srng split independence" `Quick
      test_srng_split_independence;
    Alcotest.test_case "srng below range" `Quick test_srng_below_range;
    Alcotest.test_case "faults parse round trip" `Quick
      test_faults_parse_roundtrip;
    Alcotest.test_case "injector gating" `Quick test_injector_gating;
    Alcotest.test_case "advance semantics" `Quick test_advance_semantics;
    Alcotest.test_case "ALAT interference" `Quick test_alat_interference;
    Alcotest.test_case "zero-fault point reproduces baseline" `Quick
      test_stress_zero_fault_reproduces_baseline;
    Alcotest.test_case "graceful degradation" `Quick
      test_stress_graceful_degradation;
    Alcotest.test_case "--jobs determinism" `Quick
      test_stress_jobs_determinism;
    Alcotest.test_case "bench JSON schema (committed baselines)" `Quick
      test_bench_json_schema_committed;
    Alcotest.test_case "bench JSON schema (stress section)" `Quick
      test_bench_json_schema_stress_section;
    Alcotest.test_case "bench JSON schema rejects drift" `Quick
      test_bench_json_rejects_drift ]
