(* Whole-stack differential fuzzing.

   Random structured programs — functions, floats, pointer tables, nested
   loops, input-dependent aliasing — are compiled under every pipeline
   variant and executed on both the reference interpreter and the ITL
   machine.  All observable outputs must be bit-identical to the
   unoptimized interpreter run.  This exercises, in one property: the
   frontend, alias analysis, speculative SSA, speculative SSAPRE, store
   promotion, strength reduction, cleanup, codegen, scheduling, the ALAT,
   and the interpreter's semantic ALAT.  A second differential pits the
   three interpreter engines (pre-compiled tree, threaded-code vm,
   tree-walking reference) against each other under fault injection. *)

open Spec_ir
open Spec_driver

let check_bool = Alcotest.(check bool)

(* ---- generator ---- *)

(* a random kernel over a pointer table: every interesting aliasing shape
   the paper cares about can arise *)
let gen_program : string QCheck.Gen.t =
  QCheck.Gen.(
    let* seed = int_range 1 100000 in
    let* n = int_range 3 25 in
    let* alias_pct = int_range 0 100 in
    let* use_fn = bool in
    let* use_float = bool in
    let* inner = int_range 1 4 in
    let* acc_via_ptr = bool in
    let* extra_stores = int_range 0 2 in
    let body_stores =
      String.concat " "
        (List.init extra_stores (fun k ->
             Printf.sprintf "*q = i * %d + j;" (k + 2)))
    in
    let fn_def =
      if use_fn then
        "int combine(int x, int y){ if (x > y) return x - y; return x + y; } "
      else ""
    in
    let combine a b =
      if use_fn then Printf.sprintf "combine(%s, %s)" a b
      else Printf.sprintf "(%s + %s)" a b
    in
    let float_part =
      if use_float then
        "float* fv; fv = (float*)tab[2]; fv[i % 8] = fv[i % 8] + 0.5; "
      else ""
    in
    let acc_update =
      if acc_via_ptr then "*acc = *acc + a[j % 16] + i;"
      else "s = s + a[j % 16] + i;"
    in
    return
      (Printf.sprintf
         {|
int* tab[4];
%s
int main(){
  seed(%d);
  tab[0] = (int*)malloc(128);
  tab[1] = (int*)malloc(128);
  tab[2] = (int*)malloc(64);
  tab[3] = (int*)malloc(8);
  int* a; a = tab[0];
  int* b; b = tab[1];
  int* acc; acc = tab[3];
  *acc = 0;
  for (int k = 0; k < 16; k++) { a[k] = rnd(50); b[k] = rnd(50); }
  int s; s = 0;
  for (int i = 0; i < %d; i++) {
    int* q;
    if (rnd(100) < %d) q = a; else q = b;
    for (int j = 0; j < %d; j++) {
      %s
      q[(i + j) %% 16] = %s;
      %s
      %s
    }
  }
  print_int(s + *acc);
  int t; t = 0;
  for (int k = 0; k < 16; k++) t = t + a[k] + b[k];
  print_int(t);
  return 0;
}
|}
         fn_def seed n alias_pct inner acc_update
         (combine "a[i % 16]" "b[j % 16]")
         body_stores float_part))

let variants_of src =
  let prof = Pipeline.profile_of_source src in
  [ "base", Pipeline.Base;
    "profile", Pipeline.Spec_profile prof;
    "heuristic", Pipeline.Spec_heuristic ]
  |> List.map (fun (n, v) -> (n, v, prof))

let prop_whole_stack =
  QCheck.Test.make ~count:120 ~name:"whole-stack differential fuzzing"
    (QCheck.make ~print:Fun.id gen_program)
    (fun src ->
      let expected =
        (Spec_prof.Interp.run (Lower.compile src)).Spec_prof.Interp.output
      in
      List.for_all
        (fun (_name, variant, prof) ->
          let r =
            Pipeline.compile_and_optimize ~edge_profile:(Some prof) src
              variant
          in
          (* the pre-compiled interpreter on both of its code paths: the
             bare fast path and the instrumented path (hooks present flip
             [instr] even when every closure is a no-op) *)
          let cp = Spec_prof.Interp.compile r.Pipeline.prog in
          let fast_off =
            (Spec_prof.Interp.run_compiled cp).Spec_prof.Interp.output
          in
          let fast_on =
            (Spec_prof.Interp.run_compiled
               ~hooks:(Spec_prof.Interp.no_hooks ()) cp)
              .Spec_prof.Interp.output
          in
          (* the tree-walking reference oracle on the same optimized
             program *)
          let ref_out =
            (Spec_prof.Interp_ref.run r.Pipeline.prog)
              .Spec_prof.Interp_ref.output
          in
          let mp = Spec_codegen.Codegen.lower r.Pipeline.prog in
          ignore (Spec_codegen.Schedule.run mp : Spec_codegen.Schedule.stats);
          let mach_out = (Spec_machine.Machine.run mp).Spec_machine.Machine.output in
          fast_off = expected && fast_on = expected && ref_out = expected
          && mach_out = expected)
        (variants_of src))

(* a focused generator for the SSA/PRE corner cases: deep nesting, breaks,
   early returns, while loops with zero-trip risk *)
let gen_control : string QCheck.Gen.t =
  QCheck.Gen.(
    let* seed = int_range 1 10000 in
    let* lim = int_range 0 12 in
    let* brk = int_range 0 20 in
    let* zero_trip = bool in
    return
      (Printf.sprintf
         {|
int g; int h;
int main(){
  seed(%d);
  int s; s = 0;
  g = rnd(10);
  int* w; w = &h;
  if (rnd(1000) == 1001) w = &g;
  int i; i = %s;
  while (i < %d) {
    s = s + g;
    *w = i;
    if (i == %d) break;
    if (g > 5) { s = s + 1; } else { s = s - 1; }
    i = i + 1;
  }
  if (s < 0) { print_int(0 - s); return 1; }
  print_int(s); print_int(h);
  return 0;
}
|}
         seed
         (if zero_trip then "100" else "0")
         lim brk))

let prop_control_shapes =
  QCheck.Test.make ~count:120 ~name:"control-flow corner cases"
    (QCheck.make ~print:Fun.id gen_control)
    (fun src ->
      let expected =
        (Spec_prof.Interp.run (Lower.compile src)).Spec_prof.Interp.output
      in
      List.for_all
        (fun (_n, variant, prof) ->
          let r =
            Pipeline.compile_and_optimize ~edge_profile:(Some prof) src
              variant
          in
          (Spec_prof.Interp.run r.Pipeline.prog).Spec_prof.Interp.output
          = expected
          && (Spec_machine.Machine.run_sir r.Pipeline.prog)
               .Spec_machine.Machine.output
             = expected)
        (variants_of src))

(* recursion + memory: frames, the register stack, per-frame ALAT tags *)
let gen_recursive : string QCheck.Gen.t =
  QCheck.Gen.(
    let* seed = int_range 1 10000 in
    let* depth = int_range 1 12 in
    return
      (Printf.sprintf
         {|
int* stackmem[1];
int walk(int n, int* cells){
  if (n <= 0) return cells[0];
  cells[n %% 16] = cells[n %% 16] + n;
  int below; below = walk(n - 1, cells);
  return below + cells[n %% 16];
}
int main(){
  seed(%d);
  stackmem[0] = (int*)malloc(128);
  int* cells; cells = stackmem[0];
  for (int k = 0; k < 16; k++) cells[k] = rnd(9);
  print_int(walk(%d, cells));
  return 0;
}
|}
         seed depth))

let prop_recursive =
  QCheck.Test.make ~count:80 ~name:"recursive frames and memory"
    (QCheck.make ~print:Fun.id gen_recursive)
    (fun src ->
      let expected =
        (Spec_prof.Interp.run (Lower.compile src)).Spec_prof.Interp.output
      in
      List.for_all
        (fun (_n, variant, prof) ->
          let r =
            Pipeline.compile_and_optimize ~edge_profile:(Some prof) src
              variant
          in
          (Spec_machine.Machine.run_sir r.Pipeline.prog)
            .Spec_machine.Machine.output
          = expected)
        (variants_of src))

(* ---- three-way engine differential ---- *)

(* the pre-compiled tree engine, the threaded-code vm and the
   tree-walking reference must agree bit-for-bit on the same optimized
   program — outputs, return value, and (tree vs vm) every counter —
   under every fault plan.  Each engine draws a fresh injector from the
   same plan and scope, so all three see identical deterministic fault
   streams. *)
let fault_plans = [ ""; "inv=50000"; "flush=64"; "flush=16,inv=200000" ]

let engines_agree r name plan_spec =
  let plan =
    match Spec_stress.Faults.parse ~seed:7 plan_spec with
    | Ok p -> p
    | Error m -> failwith m
  in
  let inj () =
    Spec_stress.Faults.injector_opt plan ~scope:[ "fuzz"; name; plan_spec ]
  in
  let tree = Spec_prof.Interp.run ?faults:(inj ()) r.Pipeline.prog in
  let vm =
    Spec_prof.Vm.run_program ?faults:(inj ()) (Lazy.force r.Pipeline.vm)
  in
  let oracle =
    Spec_prof.Interp_ref.run ?faults:(inj ()) r.Pipeline.prog
  in
  let ret_agrees =
    match tree.Spec_prof.Interp.ret, oracle.Spec_prof.Interp_ref.ret with
    | Spec_prof.Interp.Vint x, Spec_prof.Interp_ref.Vint y -> x = y
    | Spec_prof.Interp.Vflt x, Spec_prof.Interp_ref.Vflt y ->
      compare x y = 0
    | _ -> false
  in
  tree.Spec_prof.Interp.output = oracle.Spec_prof.Interp_ref.output
  && vm.Spec_prof.Interp.output = oracle.Spec_prof.Interp_ref.output
  && ret_agrees
  && vm.Spec_prof.Interp.ret = tree.Spec_prof.Interp.ret
  && vm.Spec_prof.Interp.counters = tree.Spec_prof.Interp.counters

let prop_engine_differential =
  QCheck.Test.make ~count:40
    ~name:"three-way engine differential (tree/vm/ref, faulted)"
    (QCheck.make ~print:Fun.id
       QCheck.Gen.(oneof [ gen_program; gen_control; gen_recursive ]))
    (fun src ->
      List.for_all
        (fun (name, variant, prof) ->
          let r =
            Pipeline.compile_and_optimize ~edge_profile:(Some prof) src
              variant
          in
          List.for_all (engines_agree r name) fault_plans)
        (variants_of src))

(* ---- deoptimization-recovery differential ---- *)

(* with [~recover], a missed check deoptimizes into the unoptimized body
   instead of re-running the load: under flush/invalidate/capacity fault
   plans both engines must still reproduce the unoptimized oracle
   bit-for-bit and agree with each other on every counter (the vm's
   step refund included) *)
let deopt_fault_plans =
  [ "flush=16"; "inv=200000"; "alat=2"; "flush=16,inv=100000" ]

let deopt_engines_agree r dplan expected name plan_spec =
  let plan =
    match Spec_stress.Faults.parse ~seed:11 plan_spec with
    | Ok p -> p
    | Error m -> failwith m
  in
  let inj () =
    Spec_stress.Faults.injector_opt plan
      ~scope:[ "fuzz-deopt"; name; plan_spec ]
  in
  let tree =
    Spec_prof.Interp.run ?faults:(inj ()) ~recover:dplan r.Pipeline.prog
  in
  let vm =
    Spec_prof.Vm.run ?faults:(inj ()) ~recover:dplan r.Pipeline.prog
  in
  let ok =
    tree.Spec_prof.Interp.output = expected
    && vm.Spec_prof.Interp.output = expected
    && vm.Spec_prof.Interp.ret = tree.Spec_prof.Interp.ret
    && vm.Spec_prof.Interp.counters = tree.Spec_prof.Interp.counters
  in
  (ok, tree.Spec_prof.Interp.counters.Spec_prof.Interp.deopts)

let prop_deopt_recovery =
  QCheck.Test.make ~count:15
    ~name:"deopt recovery differential (tree/vm, faulted)"
    (QCheck.make ~print:Fun.id
       QCheck.Gen.(oneof [ gen_program; gen_control; gen_recursive ]))
    (fun src ->
      let expected =
        (Spec_prof.Interp_ref.run (Lower.compile src))
          .Spec_prof.Interp_ref.output
      in
      let dplan = Spec_safety.Deopt.make_plan (Lower.compile src) in
      List.for_all
        (fun (name, variant, prof) ->
          let r =
            Pipeline.compile_and_optimize ~edge_profile:(Some prof)
              ~deopt:true src variant
          in
          List.for_all
            (fun plan -> fst (deopt_engines_agree r dplan expected name plan))
            deopt_fault_plans)
        (variants_of src))

let test_deopt_forced_faults () =
  (* deterministic leg with a kernel whose descriptors are known to
     survive the pipeline: forced periodic flushes must actually drive
     the deopt path, not just fall back to reloads *)
  let src =
    Spec_workloads.Workloads.train_source
      (List.find
         (fun w -> w.Spec_workloads.Workloads.name = "cipher")
         Spec_workloads.Workloads.all)
  in
  let expected =
    (Spec_prof.Interp_ref.run (Lower.compile src)).Spec_prof.Interp_ref.output
  in
  let dplan = Spec_safety.Deopt.make_plan (Lower.compile src) in
  let r =
    Pipeline.compile_and_optimize ~deopt:true src Pipeline.Spec_heuristic
  in
  let total = ref 0 in
  List.iter
    (fun plan ->
      let ok, deopts = deopt_engines_agree r dplan expected "cipher" plan in
      check_bool (plan ^ " engines agree on the oracle output") true ok;
      total := !total + deopts)
    deopt_fault_plans;
  check_bool "forced faults exercised the deopt path" true (!total > 0)

let test_fuzz_smoke () =
  (* one deterministic instance of each generator, as a fast smoke test *)
  let pick g = QCheck.Gen.generate1 ~rand:(Random.State.make [| 42 |]) g in
  List.iter
    (fun src ->
      let expected =
        (Spec_prof.Interp.run (Lower.compile src)).Spec_prof.Interp.output
      in
      check_bool "smoke instance agrees" true
        (List.for_all
           (fun (_n, v, prof) ->
             let r =
               Pipeline.compile_and_optimize ~edge_profile:(Some prof) src v
             in
             (Spec_prof.Interp.run r.Pipeline.prog).Spec_prof.Interp.output
             = expected)
           (variants_of src)))
    [ pick gen_program; pick gen_control; pick gen_recursive ]

let suite =
  [ Alcotest.test_case "fuzz smoke" `Quick test_fuzz_smoke;
    QCheck_alcotest.to_alcotest prop_whole_stack;
    QCheck_alcotest.to_alcotest prop_control_shapes;
    QCheck_alcotest.to_alcotest prop_recursive;
    QCheck_alcotest.to_alcotest prop_engine_differential;
    Alcotest.test_case "deopt recovery under forced faults" `Quick
      test_deopt_forced_faults;
    QCheck_alcotest.to_alcotest prop_deopt_recovery ]
