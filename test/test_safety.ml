(* Tests for the speculative-safety subsystem.

   The crypto workload family pins the checker's contract: the leaky
   cipher kernel must produce a CONFIRMED speculative-taint report at a
   stable site key (golden below), the constant-time selection kernel
   must come out clean *while still speculating*, and secret-free
   programs stay unannotated.  On top of the verdicts: strict mode,
   deopt-based recovery (tree/vm agreement, nonzero deopt counters
   under forced interference, and the step-refund parity), and
   preservation of deopt descriptors across the compile-cache artifact
   round trip. *)

open Spec_ir
open Spec_driver
open Spec_safety

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_strl = Alcotest.(check (list string))

let workload name =
  List.find
    (fun w -> w.Spec_workloads.Workloads.name = name)
    Spec_workloads.Workloads.all

let train_src name = Spec_workloads.Workloads.train_source (workload name)

(* one deopt-capable checked build per (workload, variant), memoized —
   several tests below interrogate the same compile *)
let builds : (string * string, Pipeline.result) Hashtbl.t = Hashtbl.create 8

let build name vname =
  match Hashtbl.find_opt builds (name, vname) with
  | Some r -> r
  | None ->
    let src = train_src name in
    let variant =
      match vname with
      | "heuristic" -> Pipeline.Spec_heuristic
      | "profile" -> Pipeline.Spec_profile (Pipeline.profile_of_source src)
      | "aggressive" -> Pipeline.Aggressive
      | v -> failwith ("unknown variant " ^ v)
    in
    let r =
      match variant with
      | Pipeline.Spec_profile p ->
        Pipeline.compile_and_optimize ~edge_profile:(Some p) ~deopt:true
          ~safety:true src variant
      | _ ->
        Pipeline.compile_and_optimize ~deopt:true ~safety:true src variant
    in
    Hashtbl.replace builds (name, vname) r;
    r

let report r =
  match r.Pipeline.safety with
  | Some rep -> rep
  | None -> Alcotest.fail "compile with ~safety:true carried no report"

(* ---- checker verdicts on the crypto family (goldens) ---- *)

(* the stable site key of the cipher's secret-dependent speculative
   load: function name, report kind, deversioned address expression,
   ordinal — deliberately free of statement/site/SSA ids so it survives
   pipeline changes (see Spectct) *)
let cipher_site = "CONFIRMED spec-addr round:spec-addr:(sbox + (idx * 8))#0"

let test_cipher_leaks () =
  List.iter
    (fun vname ->
      let rep = report (build "cipher" vname) in
      check_str (vname ^ " verdict") "leaks"
        (Taint.verdict_str rep.Taint.rp_verdict);
      check_int (vname ^ " confirmed") 1 rep.Taint.rp_confirmed;
      check_int (vname ^ " plausible") 0 rep.Taint.rp_plausible;
      check_strl (vname ^ " site lines") [ cipher_site ]
        (Spectct.site_lines rep);
      check_bool (vname ^ " strict mode fails") false (Spectct.strict_ok rep))
    [ "heuristic"; "profile"; "aggressive" ]

let test_ctsel_safe () =
  List.iter
    (fun vname ->
      let r = build "ctsel" vname in
      let rep = report r in
      check_str (vname ^ " verdict") "safe"
        (Taint.verdict_str rep.Taint.rp_verdict);
      check_strl (vname ^ " no sites") [] (Spectct.site_lines rep);
      check_bool (vname ^ " strict mode passes") true (Spectct.strict_ok rep);
      (* clean must not mean trivial: the constant-time build still
         carries data speculation for the checker to reason about *)
      if vname <> "aggressive" then begin
        let run = Spec_prof.Interp.run r.Pipeline.prog in
        check_bool (vname ^ " really speculates") true
          (run.Spec_prof.Interp.counters.Spec_prof.Interp.check_stmts > 0)
      end)
    [ "heuristic"; "profile" ]

let test_secret_free_unannotated () =
  (* no [secret] contract anywhere: the checker must refuse to claim
     anything either way *)
  let rep = report (build "gzip" "heuristic") in
  check_str "verdict" "unannotated" (Taint.verdict_str rep.Taint.rp_verdict);
  check_int "confirmed" 0 rep.Taint.rp_confirmed;
  check_bool "strict mode passes" true (Spectct.strict_ok rep)

(* ---- deopt-based recovery ---- *)

let fault_plan spec =
  match Spec_stress.Faults.parse ~seed:3 spec with
  | Ok p -> p
  | Error m -> failwith m

let test_deopt_recovery_agreement () =
  (* under forced periodic flushes the cipher build must deoptimize (its
     descriptors survive the pipeline), both engines must agree to the
     counter — including steps, via the vm's refund — and the output
     must stay byte-identical to the unoptimized oracle *)
  let src = train_src "cipher" in
  let r = build "cipher" "heuristic" in
  let dplan = Deopt.make_plan (Lower.compile src) in
  let expected =
    (Spec_prof.Interp_ref.run (Lower.compile src)).Spec_prof.Interp_ref.output
  in
  let inj () =
    Spec_stress.Faults.injector (fault_plan "flush=16")
      ~scope:[ "test-safety"; "cipher"; "deopt" ]
  in
  let tree =
    Spec_prof.Interp.run ~faults:(inj ()) ~recover:dplan r.Pipeline.prog
  in
  let vm =
    Spec_prof.Vm.run ~faults:(inj ()) ~recover:dplan r.Pipeline.prog
  in
  check_str "tree output is the oracle's" expected
    tree.Spec_prof.Interp.output;
  check_str "vm output is the oracle's" expected vm.Spec_prof.Interp.output;
  check_bool "rets agree" true
    (vm.Spec_prof.Interp.ret = tree.Spec_prof.Interp.ret);
  check_bool "every counter agrees" true
    (vm.Spec_prof.Interp.counters = tree.Spec_prof.Interp.counters);
  check_bool "forced flushes exercised the deopt path" true
    (tree.Spec_prof.Interp.counters.Spec_prof.Interp.deopts > 0)

let test_recover_vs_reload_outputs () =
  (* recovery policy must never be observable in the output, only in
     the counters *)
  let src = train_src "cipher" in
  let r = build "cipher" "heuristic" in
  let dplan = Deopt.make_plan (Lower.compile src) in
  let inj leg =
    Spec_stress.Faults.injector (fault_plan "flush=16")
      ~scope:[ "test-safety"; "cipher"; leg ]
  in
  let reload = Spec_prof.Interp.run ~faults:(inj "cmp") r.Pipeline.prog in
  let deo =
    Spec_prof.Interp.run ~faults:(inj "cmp") ~recover:dplan r.Pipeline.prog
  in
  check_str "same output under either policy"
    reload.Spec_prof.Interp.output deo.Spec_prof.Interp.output;
  check_bool "reload leg reloads" true
    (reload.Spec_prof.Interp.counters.Spec_prof.Interp.check_reloads > 0);
  check_bool "deopt leg deopts" true
    (deo.Spec_prof.Interp.counters.Spec_prof.Interp.deopts > 0)

(* ---- deopt descriptors across the compile-cache artifact ---- *)

let fresh_dir tag =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "specsafety-test-%d-%s" (Unix.getpid ()) tag)
  in
  (match Sys.readdir dir with
   | files -> Array.iter (fun f -> Sys.remove (Filename.concat dir f)) files
   | exception Sys_error _ -> ());
  dir

let vm_deopt_entries (p : Spec_prof.Vmcode.program) =
  Array.fold_left
    (fun acc (f : Spec_prof.Vmcode.func) ->
      acc + Hashtbl.length f.Spec_prof.Vmcode.vdeopt)
    0 p.Spec_prof.Vmcode.vfuncs

let test_artifact_preserves_deopt () =
  let src = train_src "cipher" in
  let c = Spec_fdo.Cache.create (fresh_dir "deopt") in
  let compile () =
    Pipeline.compile_and_optimize ~deopt:true ~safety:true ~cache:c src
      Pipeline.Spec_heuristic
  in
  let cold = compile () in
  let warm = compile () in
  check_bool "warm compile is from cache" true warm.Pipeline.from_cache;
  let d_cold = Deopt.count cold.Pipeline.prog in
  check_bool "cold build carries descriptors" true (d_cold > 0);
  check_int "descriptors survive the artifact" d_cold
    (Deopt.count warm.Pipeline.prog);
  (* the cached bytecode must carry them too, refunds included: a warm
     vm run under forced faults must replay the cold one exactly *)
  check_int "vm descriptor tables survive the artifact"
    (vm_deopt_entries (Lazy.force cold.Pipeline.vm))
    (vm_deopt_entries (Lazy.force warm.Pipeline.vm));
  let dplan = Deopt.make_plan (Lower.compile src) in
  let inj () =
    Spec_stress.Faults.injector (fault_plan "flush=16")
      ~scope:[ "test-safety"; "artifact"; "deopt" ]
  in
  let run r =
    Spec_prof.Vm.run_program ~faults:(inj ()) ~recover:dplan
      (Lazy.force r.Pipeline.vm)
  in
  let rc = run cold and rw = run warm in
  check_str "warm vm output identical" rc.Spec_prof.Interp.output
    rw.Spec_prof.Interp.output;
  check_bool "warm vm counters identical" true
    (rw.Spec_prof.Interp.counters = rc.Spec_prof.Interp.counters);
  check_bool "warm vm run deopted" true
    (rw.Spec_prof.Interp.counters.Spec_prof.Interp.deopts > 0)

let suite =
  [ Alcotest.test_case "cipher leaks (golden site key)" `Quick
      test_cipher_leaks;
    Alcotest.test_case "ctsel constant-time is safe" `Quick test_ctsel_safe;
    Alcotest.test_case "secret-free programs stay unannotated" `Quick
      test_secret_free_unannotated;
    Alcotest.test_case "deopt recovery: engines agree, oracle output" `Quick
      test_deopt_recovery_agreement;
    Alcotest.test_case "recovery policy invisible in output" `Quick
      test_recover_vs_reload_outputs;
    Alcotest.test_case "artifact preserves deopt descriptors" `Quick
      test_artifact_preserves_deopt ]
