(* Tests for codegen, the ALAT, caches, and the machine simulator:
   differential execution against the reference interpreter under every
   pipeline, plus performance-model sanity checks. *)

open Spec_ir
open Spec_driver
open Spec_machine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let interp_out p = (Spec_prof.Interp.run p).Spec_prof.Interp.output

let machine_out p = (Machine.run_sir p).Machine.output

let test_machine_basic () =
  let p = Lower.compile "int main(){ print_int(2 + 3 * 4); return 0; }" in
  check_str "arith" "14\n" (machine_out p)

let test_machine_matches_interp_suite () =
  let srcs =
    [ "int main(){ int s; s = 0; for (int i = 0; i < 10; i++) s += i; \
       print_int(s); return 0; }";
      "int a[8]; int main(){ for (int i = 0; i < 8; i++) a[i] = i * i; \
       int s; s = 0; for (int i = 0; i < 8; i++) s += a[i]; \
       print_int(s); return 0; }";
      "float acc; int main(){ float x; x = 0.25; acc = 0.0; \
       for (int i = 0; i < 12; i++) { acc = acc + x; x = x * 1.5; } \
       print_flt(acc); return 0; }";
      "int fib(int n){ if (n < 2) return n; return fib(n-1) + fib(n-2); } \
       int main(){ print_int(fib(12)); return 0; }";
      "int main(){ int* p; p = (int*)malloc(64); \
       for (int i = 0; i < 8; i++) p[i] = 3 * i; \
       int s; s = 0; for (int i = 0; i < 8; i++) s += p[i]; \
       print_int(s); return 0; }";
      "int main(){ seed(7); int s; s = 0; \
       for (int i = 0; i < 20; i++) s += rnd(100); \
       print_int(s); return 0; }" ]
  in
  List.iter
    (fun src ->
      let pi = Lower.compile src in
      let pm = Lower.compile src in
      check_str "machine matches interpreter" (interp_out pi) (machine_out pm))
    srcs

let spec_src =
  "int g; int h; \
   int main(){ int s; s = 0; g = 7; int* w; w = &h; \
   if (rnd(1000) == 999) w = &g; \
   for (int i = 0; i < 200; i++) { s = s + g; *w = i; } \
   print_int(s); print_int(h); return 0; }"

let optimize ?edge src variant =
  let prof = Pipeline.profile_of_source src in
  let edge_profile = if edge = Some false then None else Some prof in
  (Pipeline.compile_and_optimize ~edge_profile src variant).Pipeline.prog

let test_machine_runs_speculative_code () =
  let baseline = interp_out (Lower.compile spec_src) in
  List.iter
    (fun variant ->
      let p = optimize spec_src variant in
      check_str
        (Printf.sprintf "machine output under %s" (Pipeline.variant_name variant))
        baseline (machine_out p))
    [ Pipeline.Noopt; Pipeline.Base; Pipeline.Spec_heuristic ]

let test_alat_hit_makes_checks_free () =
  (* no aliasing at runtime: every ld.c must hit *)
  let p = optimize spec_src Pipeline.Spec_heuristic in
  let r = Machine.run_sir p in
  check_bool "checks executed" true (r.Machine.perf.Machine.checks >= 190);
  check_int "no check misses" 0 r.Machine.perf.Machine.check_misses

let test_alat_miss_recovers () =
  (* p and q do alias at runtime: the checks must miss and recover *)
  let src =
    "int a[4]; int b[4]; \
     int main(){ int* p; int* q; int x; int y; \
     p = &a[0]; q = &b[0]; \
     if (rnd(10) < 100) q = &a[0]; \
     a[0] = 1; \
     x = *p; *q = 42; y = *p; \
     print_int(y); return 0; }"
  in
  let p = optimize src Pipeline.Spec_heuristic in
  let r = Machine.run_sir p in
  check_str "mis-speculation recovered on machine" "42\n" r.Machine.output;
  check_bool "at least one check missed" true
    (r.Machine.perf.Machine.check_misses >= 1)

let test_speculation_reduces_loads_and_cycles () =
  let base = Machine.run_sir (optimize spec_src Pipeline.Base) in
  let spec = Machine.run_sir (optimize spec_src Pipeline.Spec_heuristic) in
  let base_loads = Machine.loads_retired base.Machine.perf in
  let spec_loads = Machine.loads_retired spec.Machine.perf in
  check_bool "speculation reduces retired loads" true (spec_loads < base_loads);
  check_bool "speculation reduces cycles" true
    (spec.Machine.perf.Machine.cycles < base.Machine.perf.Machine.cycles)

let test_fp_loads_slower_than_int () =
  let int_src =
    "int a[64]; int main(){ int s; s = 0; \
     for (int r = 0; r < 50; r++) for (int i = 0; i < 64; i++) s += a[i]; \
     print_int(s); return 0; }"
  in
  let flt_src =
    "float a[64]; int main(){ float s; s = 0.0; \
     for (int r = 0; r < 50; r++) for (int i = 0; i < 64; i++) s = s + a[i]; \
     print_flt(s); return 0; }"
  in
  let ri = Machine.run_sir (Lower.compile int_src) in
  let rf = Machine.run_sir (Lower.compile flt_src) in
  check_bool "fp loads cost more cycles" true
    (rf.Machine.perf.Machine.cycles > ri.Machine.perf.Machine.cycles)

let test_cache_locality_matters () =
  (* sequential sweep over a big array vs. repeated sweep over a tiny one *)
  let big =
    "int a[65536]; int main(){ int s; s = 0; \
     for (int i = 0; i < 65536; i++) s += a[i]; \
     print_int(s); return 0; }"
  in
  let small =
    "int a[64]; int main(){ int s; s = 0; \
     for (int r = 0; r < 1024; r++) for (int i = 0; i < 64; i++) s += a[i]; \
     print_int(s); return 0; }"
  in
  let rb = Machine.run_sir (Lower.compile big) in
  let rs = Machine.run_sir (Lower.compile small) in
  (* same load count, worse locality -> more cycles per load *)
  let cyc_per_load r =
    float_of_int r.Machine.perf.Machine.cycles
    /. float_of_int (max 1 (Machine.loads_retired r.Machine.perf))
  in
  check_bool "cold misses cost cycles" true (cyc_per_load rb > cyc_per_load rs)

let test_alat_capacity_pressure () =
  (* more live advanced loads than ALAT entries: checks must start missing
     when the table is tiny *)
  let src =
    (* 40 distinct speculative temps alive across an aliasing store *)
    let decls = Buffer.create 256 in
    Buffer.add_string decls "int g[64]; int h; int main(){ int* w; w = &h; \
      if (rnd(1000) == 999) w = &g[0]; int s; s = 0; \
      for (int r = 0; r < 50; r++) { ";
    for k = 0 to 39 do
      Buffer.add_string decls (Printf.sprintf "s += g[%d]; " k)
    done;
    Buffer.add_string decls "*w = r; ";
    for k = 0 to 39 do
      Buffer.add_string decls (Printf.sprintf "s += g[%d]; " k)
    done;
    Buffer.add_string decls "} print_int(s); return 0; }";
    Buffer.contents decls
  in
  let p = optimize src Pipeline.Spec_heuristic in
  let big_alat =
    Machine.run ~config:{ Machine.default_config with Machine.alat_entries = 128 }
      (Spec_codegen.Codegen.lower p)
  in
  let p2 = optimize src Pipeline.Spec_heuristic in
  let small_alat =
    Machine.run ~config:{ Machine.default_config with Machine.alat_entries = 8 }
      (Spec_codegen.Codegen.lower p2)
  in
  check_bool "small ALAT misses more" true
    (small_alat.Machine.perf.Machine.check_misses
     > big_alat.Machine.perf.Machine.check_misses);
  (* correctness unaffected by capacity *)
  check_str "same output" big_alat.Machine.output small_alat.Machine.output

let test_rse_accounting () =
  let src =
    "int deep(int n){ int a; int b; int c; int d; \
     a = n; b = a + 1; c = b + 1; d = c + 1; \
     if (n <= 0) return d; return deep(n - 1) + a; } \
     int main(){ print_int(deep(40)); return 0; }"
  in
  let r = Machine.run_sir (Lower.compile src) in
  check_bool "deep recursion stacks registers" true
    (r.Machine.perf.Machine.max_stacked_regs > 96);
  check_bool "RSE spills cost cycles" true
    (r.Machine.perf.Machine.rse_stall_cycles > 0)

(* ---- ALAT unit tests (direct table model, no machine run) ---- *)

(* entries=4, assoc=2 -> two sets; set index is (addr lsr 3) land 1, so
   addresses 0,16,32,48 share set 0 and 8,24,40 share set 1 *)
let small_alat () = Alat.create ~entries:4 ~assoc:2 ()

let test_alat_same_reg_reinsert () =
  let t = small_alat () in
  Alat.insert t ~frame:0 ~reg:5 ~addr:0;
  Alat.insert t ~frame:0 ~reg:5 ~addr:16;
  (* the re-insert replaces, it does not occupy a second slot *)
  check_int "single live entry" 1 (Alat.live t);
  check_int "replacement is not a capacity eviction" 0 t.Alat.capacity_evictions;
  check_bool "tag still present" true (Alat.check t ~frame:0 ~reg:5);
  (* the entry now guards the new address, not the old one *)
  Alat.invalidate_store t ~addr:0 ~bytes:8;
  check_bool "store to the old address is harmless" true
    (Alat.check t ~frame:0 ~reg:5);
  Alat.invalidate_store t ~addr:16 ~bytes:8;
  check_bool "store to the new address invalidates" false
    (Alat.check t ~frame:0 ~reg:5)

let test_alat_store_cell_boundary () =
  (* an entry guards the cell [addr, addr + cell_size) *)
  let cell = Spec_ir.Types.cell_size in
  let hit addr bytes =
    let t = small_alat () in
    Alat.insert t ~frame:0 ~reg:1 ~addr:(cell * 2);
    Alat.invalidate_store t ~addr ~bytes;
    not (Alat.check t ~frame:0 ~reg:1)
  in
  check_bool "store inside the cell invalidates" true (hit (cell * 2) 1);
  check_bool "store straddling the upper boundary invalidates" true
    (hit ((cell * 3) - 1) 2);
  check_bool "store ending exactly at the cell start is harmless" false
    (hit cell cell);
  check_bool "store starting exactly past the cell is harmless" false
    (hit (cell * 3) cell);
  check_bool "store straddling the lower boundary invalidates" true
    (hit ((cell * 2) - 1) 2)

let test_alat_round_robin_eviction () =
  let t = small_alat () in
  (* fill set 0, then overflow it twice: the global round-robin victim
     counter is bumped before use, so the second slot goes first *)
  Alat.insert t ~frame:0 ~reg:1 ~addr:0;
  Alat.insert t ~frame:0 ~reg:2 ~addr:16;
  Alat.insert t ~frame:0 ~reg:3 ~addr:32;
  check_int "first overflow evicts" 1 t.Alat.capacity_evictions;
  check_bool "round-robin victim is slot 1 (reg 2)" false
    (Alat.check t ~frame:0 ~reg:2);
  check_bool "slot 0 (reg 1) survives the first eviction" true
    (Alat.check t ~frame:0 ~reg:1);
  Alat.insert t ~frame:0 ~reg:4 ~addr:48;
  check_int "second overflow evicts" 2 t.Alat.capacity_evictions;
  check_bool "victim rotation reaches slot 0 (reg 1)" false
    (Alat.check t ~frame:0 ~reg:1);
  check_bool "reg 3 survives" true (Alat.check t ~frame:0 ~reg:3);
  check_bool "reg 4 survives" true (Alat.check t ~frame:0 ~reg:4);
  check_int "set never holds more than assoc entries" 2 (Alat.live t)

let test_alat_frame_tag_collision () =
  (* the same register number in two activations must not collide *)
  let t = small_alat () in
  Alat.insert t ~frame:1 ~reg:5 ~addr:0;
  Alat.insert t ~frame:2 ~reg:5 ~addr:16;
  check_int "both activations live" 2 (Alat.live t);
  check_bool "frame 1 hit" true (Alat.check t ~frame:1 ~reg:5);
  check_bool "frame 2 hit" true (Alat.check t ~frame:2 ~reg:5);
  Alat.invalidate_store t ~addr:0 ~bytes:4;
  check_bool "store kills only the matching activation" false
    (Alat.check t ~frame:1 ~reg:5);
  check_bool "the other activation survives" true
    (Alat.check t ~frame:2 ~reg:5)

let test_alat_counter_pinning () =
  (* regression for the O(1) tag-index insert: the counter stream of a
     mixed insert/replace/evict/store sequence is pinned exactly *)
  let t = small_alat () in
  Alat.insert t ~frame:0 ~reg:1 ~addr:0;    (* set 0, slot 0 *)
  Alat.insert t ~frame:0 ~reg:2 ~addr:8;    (* set 1, slot 0 *)
  Alat.insert t ~frame:0 ~reg:1 ~addr:16;   (* same tag: replace in set 0 *)
  Alat.insert t ~frame:0 ~reg:3 ~addr:32;   (* set 0, slot 1 *)
  Alat.insert t ~frame:0 ~reg:4 ~addr:48;   (* set 0 full: evict slot 1 *)
  check_int "inserts" 5 t.Alat.inserts;
  check_int "capacity evictions" 1 t.Alat.capacity_evictions;
  check_bool "evicted tag gone" false (Alat.check t ~frame:0 ~reg:3);
  check_bool "replaced tag live at its new address" true
    (Alat.check t ~frame:0 ~reg:1);
  Alat.invalidate_store t ~addr:16 ~bytes:4;
  check_int "store invalidations" 1 t.Alat.store_invalidations;
  check_bool "store killed the replaced tag" false
    (Alat.check t ~frame:0 ~reg:1);
  check_int "survivors" 2 (Alat.live t);
  (* stale tag fields on an invalidated slot must not shadow the live
     mapping owned by a newer entry (the tag-index consistency rule) *)
  Alat.insert t ~frame:0 ~reg:7 ~addr:0;
  Alat.insert t ~frame:0 ~reg:7 ~addr:24;   (* moves tag (0,7) to set 1 *)
  Alat.insert t ~frame:0 ~reg:9 ~addr:0;    (* reuses the stale set-0 slot *)
  check_bool "moved tag still resolves" true (Alat.check t ~frame:0 ~reg:7);
  check_bool "new tag resolves" true (Alat.check t ~frame:0 ~reg:9)

(* differential property over random programs, through codegen *)
let prop_machine_differential =
  QCheck.Test.make ~count:40
    ~name:"machine and interpreter agree on random speculative programs"
    (QCheck.make ~print:Fun.id
       QCheck.Gen.(
         let* n = int_range 3 10 in
         let* alias_pct = int_range 0 100 in
         return
           (Printf.sprintf
              "int a[4]; int b[4]; \
               int main(){ int* q; int s; s = 0; q = &b[0]; \
               for (int i = 0; i < %d; i++) { \
                 if (rnd(100) < %d) q = &a[i %% 4]; else q = &b[i %% 4]; \
                 *q = i; s += a[0] + a[i %% 4] + b[1]; } \
               print_int(s); return 0; }"
              n alias_pct)))
    (fun src ->
      let baseline = interp_out (Lower.compile src) in
      List.for_all
        (fun variant ->
          let p = optimize src variant in
          machine_out p = baseline)
        [ Pipeline.Base; Pipeline.Spec_heuristic ])

let suite =
  [ Alcotest.test_case "machine basic" `Quick test_machine_basic;
    Alcotest.test_case "machine matches interp" `Quick test_machine_matches_interp_suite;
    Alcotest.test_case "machine speculative code" `Quick test_machine_runs_speculative_code;
    Alcotest.test_case "ALAT hits are free" `Quick test_alat_hit_makes_checks_free;
    Alcotest.test_case "ALAT miss recovers" `Quick test_alat_miss_recovers;
    Alcotest.test_case "spec reduces loads+cycles" `Quick test_speculation_reduces_loads_and_cycles;
    Alcotest.test_case "fp loads slower" `Quick test_fp_loads_slower_than_int;
    Alcotest.test_case "cache locality" `Quick test_cache_locality_matters;
    Alcotest.test_case "ALAT capacity pressure" `Quick test_alat_capacity_pressure;
    Alcotest.test_case "ALAT same-register re-insert" `Quick test_alat_same_reg_reinsert;
    Alcotest.test_case "ALAT store at cell boundary" `Quick test_alat_store_cell_boundary;
    Alcotest.test_case "ALAT round-robin eviction" `Quick test_alat_round_robin_eviction;
    Alcotest.test_case "ALAT frame-tag collision" `Quick test_alat_frame_tag_collision;
    Alcotest.test_case "ALAT counter pinning" `Quick test_alat_counter_pinning;
    Alcotest.test_case "RSE accounting" `Quick test_rse_accounting;
    QCheck_alcotest.to_alcotest prop_machine_differential ]
