#!/bin/sh
# @ci smoke for the persistent FDO subsystem: record two profile stores,
# merge them (with decay), stale-check the merged store against the
# source, then compile twice through the content-addressed cache and
# require the warm compile to hit with byte-identical program output.
set -eu

speccc="$1"
src="$2"

work="$(mktemp -d -t speccc-fdo-ci-XXXXXX)"
trap 'rm -rf "$work"' EXIT

"$speccc" profile record "$src" -o "$work/a.sprof" > /dev/null
"$speccc" profile record "$src" -o "$work/b.sprof" > /dev/null
"$speccc" profile merge -o "$work/m.sprof" --decay 0.9 \
  "$work/a.sprof" "$work/b.sprof" > /dev/null
"$speccc" profile show "$work/m.sprof" > /dev/null

rate="$("$speccc" profile stale-check "$work/m.sprof" "$src" \
        | grep match-rate)"
case "$rate" in
  *1.0000*) ;;
  *) echo "fdo ci: expected full self-match, got: $rate" >&2; exit 1 ;;
esac

cold="$("$speccc" run -m profile --profile-in "$work/m.sprof" \
        --cache-dir "$work/cache" "$src" 2> "$work/cold.err")"
warm="$("$speccc" run -m profile --profile-in "$work/m.sprof" \
        --cache-dir "$work/cache" "$src" 2> "$work/warm.err")"

[ "$cold" = "$warm" ] || {
  echo "fdo ci: warm output differs from cold" >&2
  echo "cold: $cold" >&2; echo "warm: $warm" >&2
  exit 1
}
grep -q "misses 1  stores 1" "$work/cold.err" || {
  echo "fdo ci: cold compile did not miss+store:" >&2
  cat "$work/cold.err" >&2
  exit 1
}
grep -q "hits 1  misses 0" "$work/warm.err" || {
  echo "fdo ci: warm compile did not hit the cache:" >&2
  cat "$work/warm.err" >&2
  exit 1
}

echo "fdo ci ok"
