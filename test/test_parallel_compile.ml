(* Determinism of the parallel per-function pipeline: compiling at
   --jobs N must be observationally identical to --jobs 1 — the
   optimized program prints byte-identically and the pass report's
   jobs-invariant core (pass order, run/touched counts, counters,
   analysis-cache tallies) matches exactly.  Only wall times may differ.

   The fused segments fan per-function tasks out to the Parpool global
   pool and join in function order, so these tests drive the real
   pipeline entry points at different pool sizes; --jobs 1 runs the same
   task/commit machinery inline, which is what makes the equivalence
   hold by construction — and what this file pins against regression. *)

open Spec_ir
open Spec_driver
open Spec_workloads

let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Run [f] with the global pool at [n] domains, restoring the previous
   size afterwards (other suites share the pool). *)
let with_jobs n f =
  let prev = Parpool.get_jobs () in
  Parpool.set_jobs n;
  Fun.protect ~finally:(fun () -> Parpool.set_jobs prev) f

(* The jobs-invariant core of a pass report: everything except wall
   times.  Counter lists are order-stable (merged in function order),
   but sort anyway so the signature only pins content. *)
let stats_signature (r : Passes.report) =
  let pass ps =
    Printf.sprintf "%s runs=%d touched=%d [%s]" ps.Passes.ps_pass
      ps.Passes.ps_runs ps.Passes.ps_touched
      (String.concat ","
         (List.map
            (fun (k, v) -> Printf.sprintf "%s=%d" k v)
            (List.sort compare ps.Passes.ps_counters)))
  in
  let c = r.Passes.rp_counters in
  Printf.sprintf "%s | steens=%d modref=%d annot=%d dom=%d pt-hits=%d \
                  annot-hits=%d dom-hits=%d | verified=%d"
    (String.concat "; " (List.map pass r.Passes.rp_passes))
    c.Passes.steensgaard_runs c.Passes.modref_runs c.Passes.annot_runs
    c.Passes.dom_runs c.Passes.points_to_hits c.Passes.annot_hits
    c.Passes.dom_hits r.Passes.rp_verified

let compile ?(verify_each = false) ?edge_profile src variant =
  let prog = Lower.compile src in
  Pipeline.optimize ~verify_each ~edge_profile prog variant

(* One (workload, variant) comparison: program text and stats signature
   at --jobs 1 versus --jobs 4. *)
let check_variant ?(verify_each = false) ?edge_profile ~wname ~vname src
    variant =
  let seq = with_jobs 1 (fun () -> compile ~verify_each ?edge_profile src variant) in
  let par = with_jobs 4 (fun () -> compile ~verify_each ?edge_profile src variant) in
  check_str
    (Printf.sprintf "%s/%s: program byte-identical at --jobs 4" wname vname)
    (Pp.prog_to_string seq.Pipeline.prog)
    (Pp.prog_to_string par.Pipeline.prog);
  check_str
    (Printf.sprintf "%s/%s: pass stats identical at --jobs 4" wname vname)
    (stats_signature seq.Pipeline.report)
    (stats_signature par.Pipeline.report)

(* ------------------------------------------------------------------ *)
(* All workloads x profile-free variants                               *)
(* ------------------------------------------------------------------ *)

let test_all_workloads_profile_free () =
  List.iter
    (fun w ->
      let src = Workloads.train_source w in
      List.iter
        (fun (vname, variant) ->
          check_variant ~wname:w.Workloads.name ~vname src variant)
        [ "base", Pipeline.Base;
          "heuristic", Pipeline.Spec_heuristic;
          "aggressive", Pipeline.Aggressive ])
    Workloads.all

(* ------------------------------------------------------------------ *)
(* Profile-fed variant (control + data speculation enabled)            *)
(* ------------------------------------------------------------------ *)

let test_profile_variant () =
  List.iter
    (fun name ->
      let w = Workloads.find name in
      let src = Workloads.train_source w in
      let profile = Pipeline.profile_of_source src in
      check_variant ~wname:name ~vname:"profile" ~edge_profile:profile src
        (Pipeline.Spec_profile profile))
    [ "equake"; "gzip" ]

(* ------------------------------------------------------------------ *)
(* --verify-each: inter-task verification must be jobs-independent     *)
(* ------------------------------------------------------------------ *)

let test_verify_each_parallel () =
  List.iter
    (fun name ->
      let w = Workloads.find name in
      let src = Workloads.train_source w in
      check_variant ~verify_each:true ~wname:name ~vname:"heuristic+verify"
        src Pipeline.Spec_heuristic)
    [ "equake"; "parser"; "twolf" ]

(* ------------------------------------------------------------------ *)
(* FDO compile cache: keys must not depend on --jobs                   *)
(* ------------------------------------------------------------------ *)

let rm_rf dir =
  (match Sys.readdir dir with
   | files ->
     Array.iter
       (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
       files
   | exception Sys_error _ -> ());
  (try Unix.rmdir dir with Unix.Unix_error _ -> ())

(* A cold compile at --jobs 4 populates the cache; a compile of the same
   source at --jobs 1 must hit it (and vice versa), because the cache
   key captures what determines the output and the output is
   jobs-invariant. *)
let test_cache_key_jobs_independent () =
  let src = Workloads.train_source (Workloads.find "mcf") in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "speccc-parcache-%d" (Unix.getpid ()))
  in
  rm_rf dir;
  let cache = Spec_fdo.Cache.create dir in
  let compile () =
    Pipeline.compile_and_optimize ~cache src Pipeline.Spec_heuristic
  in
  let cold = with_jobs 4 (fun () -> compile ()) in
  check_bool "cold parallel compile missed" false cold.Pipeline.from_cache;
  let warm = with_jobs 1 (fun () -> compile ()) in
  check_bool "sequential compile hit the parallel artifact" true
    warm.Pipeline.from_cache;
  check_str "cached program identical to the parallel compile"
    (Pp.prog_to_string cold.Pipeline.prog)
    (Pp.prog_to_string warm.Pipeline.prog);
  let st = Spec_fdo.Cache.stats cache in
  check_int "exactly one miss" 1 st.Spec_fdo.Cache.misses;
  check_int "exactly one hit" 1 st.Spec_fdo.Cache.hits;
  rm_rf dir

let suite =
  [ Alcotest.test_case "all workloads x {base,heuristic,aggressive}: \
                        --jobs 4 == --jobs 1"
      `Slow test_all_workloads_profile_free;
    Alcotest.test_case "profile variant: --jobs 4 == --jobs 1" `Slow
      test_profile_variant;
    Alcotest.test_case "--verify-each under --jobs 4" `Slow
      test_verify_each_parallel;
    Alcotest.test_case "compile-cache keys are jobs-independent" `Quick
      test_cache_key_jobs_independent ]
