(* A tour of the speculative SSA form itself: the paper's Example 1 and
   the Figure 6 "enhanced phi insertion" situation, shown as actual IR.

   Example 1: a and b are potential aliases of *p; the profile says *p
   really points to b.  The chi on b after the store *p is therefore
   flagged (chi_s, cannot be ignored) while the chi on a is a speculative
   weak update (ignorable at the price of a check).

   Run with: dune exec examples/speculative_ssa_tour.exe *)

open Spec_ir
open Spec_driver

let banner title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* Example 1's shape: s1: *p = 4 with a, b in the alias class; the
   profile observes p -> b only. *)
let example1 =
  "int a; int b; \n\
   int main(){ int* p; \n\
  \  a = 1; b = 2; \n\
  \  if (rnd(10) == 99) p = &a; else p = &b;   // profile: always &b \n\
  \  *p = 4;        // chi(a) weak, chi_s(b) strong \n\
  \  int x; x = a;  // speculatively uses a's pre-store value \n\
  \  a = 4; \n\
  \  int y; y = *p; // mu(a) weak, mu_s(b) strong \n\
  \  print_int(x + y); return 0; }"

let show_ssa title src mode =
  banner title;
  let p = Lower.compile src in
  let annot = Spec_alias.Annotate.run p in
  Spec_spec.Flags.assign p annot mode;
  Sir.iter_funcs
    (fun f -> ignore (Spec_cfg.Cfg_utils.split_critical_edges f : int))
    p;
  ignore (Spec_ssa.Build_ssa.build p);
  print_endline (Pp.prog_to_string p)

let () =
  Printf.printf
    "Speculative SSA form tour — the paper's Example 1 and Figure 6.\n\
     chi/mu operands print as chi(...)/mu(...); the 's' suffix is the\n\
     speculation flag: chis(...) is highly likely and must not be ignored,\n\
     a plain chi(...) is a speculative weak update.\n";

  show_ssa "Example 1 under the traditional (nonspeculative) analysis"
    example1 Spec_spec.Flags.Nonspec;

  let prof = Pipeline.profile_of_source example1 in
  show_ssa "Example 1 under the alias profile (p always points to b)"
    example1 (Spec_spec.Flags.Profile_spec prof);

  banner "Figure 6: speculative anticipation across a merge";
  let fig6 =
    "int a[4]; int b[4]; \n\
     int main(){ int* p; int x; int y; \n\
    \  if (rnd(10) == 99) p = &a[0]; else p = &b[0]; \n\
    \  x = a[0]; \n\
    \  if (rnd(2) == 0) { *p = 1; } \n\
    \  *p = 2; \n\
    \  y = a[0];   // speculatively redundant with x = a[0] \n\
    \  print_int(x + y); return 0; }"
  in
  print_endline fig6;
  let prof6 = Pipeline.profile_of_source fig6 in
  Printf.printf "\n-- nonspeculative PRE result --\n";
  let base = Pipeline.compile_and_optimize fig6 Pipeline.Base in
  print_endline
    (Pp.func_to_string base.Pipeline.prog.Sir.syms
       (Sir.find_func base.Pipeline.prog "main"));
  Printf.printf "\n-- speculative PRE result (note [ld.a]/[ld.c]) --\n";
  let spec =
    Pipeline.compile_and_optimize fig6 (Pipeline.Spec_profile prof6)
  in
  print_endline
    (Pp.func_to_string spec.Pipeline.prog.Sir.syms
       (Sir.find_func spec.Pipeline.prog "main"));
  let out_base = Spec_prof.Interp.run base.Pipeline.prog in
  let out_spec = Spec_prof.Interp.run spec.Pipeline.prog in
  assert
    (out_base.Spec_prof.Interp.output = out_spec.Spec_prof.Interp.output);
  Printf.printf "Outputs agree: %s" out_base.Spec_prof.Interp.output
