(* Heuristic rules vs alias profile (§3.2.1 vs §3.2.2), including what
   happens when speculation is wrong.

   The program's store target depends on the input: during profiling
   (train) it never aliases the hot load; on the measured (ref) input it
   occasionally does.  The profile-driven compiler speculates — as the
   paper argues it should, because profile information is inherently
   input-sensitive and data speculation is what makes using it safe — and
   the ALAT check recovers when the alias materializes.

   Run with: dune exec examples/heuristics_vs_profile.exe *)

open Spec_driver
open Spec_machine

(* REGION selects how often the store really aliases the speculated load:
   0 while profiling, ~3% on the measured input. *)
let source ~alias_pm =
  Printf.sprintf
    "int g; int decoy; \n\
     int main(){ int s; s = 0; g = 1; int* w; w = &decoy; \n\
    \  for (int i = 0; i < 2000; i++) { \n\
    \    if (rnd(1000) < %d) w = &g; else w = &decoy; \n\
    \    s = s + g;        // speculated load \n\
    \    *w = i;           // rarely clobbers g \n\
    \    s = s + g;        // checked reload \n\
    \  } \n\
    \  print_int(s); print_int(g); return 0; }"
    alias_pm

let run_variant src variant =
  let prof = Pipeline.profile_of_source (source ~alias_pm:0) in
  let r = Pipeline.compile_and_optimize ~edge_profile:(Some prof) src variant in
  Machine.run_sir r.Pipeline.prog

let () =
  let train = source ~alias_pm:0 in
  let ref_input = source ~alias_pm:30 in
  let prof = Pipeline.profile_of_source train in

  Printf.printf "Profiling input: the store never touches g.\n";
  Printf.printf "Measured input: the store hits g ~3%% of the time.\n\n";

  let variants =
    [ "base (no data spec)", Pipeline.Base;
      "profile-driven", Pipeline.Spec_profile prof;
      "heuristic rules", Pipeline.Spec_heuristic ]
  in
  Printf.printf "%-22s %9s %8s %8s %10s %8s\n" "pipeline" "cycles" "loads"
    "checks" "misses" "output ok";
  let baseline = ref "" in
  List.iter
    (fun (name, v) ->
      let m = run_variant ref_input v in
      let p = m.Machine.perf in
      if !baseline = "" then baseline := m.Machine.output;
      Printf.printf "%-22s %9d %8d %8d %10d %8s\n" name
        p.Machine.cycles
        (Machine.loads_retired p)
        p.Machine.checks p.Machine.check_misses
        (if m.Machine.output = !baseline then "yes" else "NO!");
      assert (m.Machine.output = !baseline))
    variants;
  Printf.printf
    "\nBoth speculative pipelines eliminate the redundant loads; the \
     mis-speculated\niterations (~3%%) reload through the failed check and \
     the program output is\nbit-identical to the baseline — the property \
     the paper's framework guarantees\nvia the ALAT.\n"
