(* The paper's §5.1 case study: procedure smvp from SPEC2000 equake.

   smvp takes ~60%% of equake's runtime.  Loads of the A[][][]/v arrays
   cannot be promoted to registers by the baseline because the w[col]
   stores may alias them; the alias profile shows they never do, so
   speculative register promotion replaces ~40%% of the loads with check
   instructions, and the kernel speeds up — though less than a hand-tuned
   version that needs no checks at all.

   Run with: dune exec examples/smvp_case_study.exe [--full] *)

open Spec_driver
open Spec_workloads

let () =
  let quick = not (Array.mem "--full" Sys.argv) in
  let w = Workloads.find "equake" in
  Printf.printf "equake/smvp case study (%s input)\n\n"
    (if quick then "train-sized; pass --full for ref" else "ref");
  Printf.printf "kernel: %s\n\n" w.Workloads.description;
  let b = Experiments.run_workload ~quick w in
  let s = Experiments.smvp_case_study b in
  Printf.printf "                                        here     paper\n";
  Printf.printf "loads replaced by checks              %5.1f%%     39.8%%\n"
    s.Experiments.checks_pct;
  Printf.printf "speculative speedup over base        %+5.1f%%      +6%%\n"
    s.Experiments.spec_speedup;
  Printf.printf "hand-tuned (no checks) upper bound   %+5.1f%%     +14%%\n\n"
    s.Experiments.tuned_speedup;
  let p r = r.Experiments.r_machine.Spec_machine.Machine.perf in
  Printf.printf "%-11s %9s %9s %8s %7s %7s\n" "variant" "cycles" "insns"
    "loads" "checks" "misses";
  List.iter
    (fun (name, r) ->
      let c = p r in
      Printf.printf "%-11s %9d %9d %8d %7d %7d\n" name
        c.Spec_machine.Machine.cycles c.Spec_machine.Machine.insns
        (Spec_machine.Machine.loads_retired c) c.Spec_machine.Machine.checks
        c.Spec_machine.Machine.check_misses)
    [ "noopt", b.Experiments.noopt; "base", b.Experiments.base;
      "profile", b.Experiments.prof_spec;
      "heuristic", b.Experiments.heur_spec;
      "hand-tuned", b.Experiments.aggressive ];
  Printf.printf
    "\nAs in the paper, the gap between 'profile' and 'hand-tuned' is the \
     cost of\nthe check instructions themselves (issue slots and their \
     address forming).\n"
