(* Speculative register promotion of stores.

   An accumulator updated through a pointer every iteration stays in a
   register for the whole loop: the memory store disappears from the hot
   path, a ld.c after each unlikely-aliasing store resynchronizes the
   register when the speculation fails, and the value is written back at
   the loop exits.

   Run with: dune exec examples/store_promotion.exe *)

open Spec_ir
open Spec_driver
open Spec_machine

(* both pointers come from one pointer table, so the baseline cannot
   prove the histogram stores miss the accumulator; the profile shows
   they always do *)
let src =
  "int* tab[2]; \n\
   int main(){ tab[0] = (int*)malloc(8); tab[1] = (int*)malloc(64); \n\
  \  int* sum; sum = tab[0]; int* hist; hist = tab[1]; \n\
  \  *sum = 0; \n\
  \  for (int k = 0; k < 8; k++) hist[k] = 0; \n\
  \  for (int i = 0; i < 5000; i++) { \n\
  \    *sum = *sum + i;            // promoted: register accumulation \n\
  \    hist[i % 8] = i;            // may-alias store: ld.c after it \n\
  \  } \n\
  \  print_int(*sum); \n\
  \  int t; t = 0; for (int k = 0; k < 8; k++) t = t + hist[k]; \n\
  \  print_int(t); return 0; }"

let () =
  print_endline "Source:";
  print_endline src;
  let baseline = Spec_prof.Interp.run (Lower.compile src) in
  let prof = Pipeline.profile_of_source src in
  let show name variant =
    let r =
      Pipeline.compile_and_optimize ~edge_profile:(Some prof) src variant
    in
    let m = Machine.run_sir r.Pipeline.prog in
    assert (m.Machine.output = baseline.Spec_prof.Interp.output);
    let p = m.Machine.perf in
    Printf.printf "%-11s cycles=%7d loads=%6d stores=%6d checks=%5d misses=%d\n"
      name p.Machine.cycles
      (Machine.loads_retired p) p.Machine.stores p.Machine.checks
      p.Machine.check_misses;
    r.Pipeline.prog
  in
  Printf.printf "\nMachine runs (all outputs bit-identical to the baseline):\n";
  let _ = show "noopt" Pipeline.Noopt in
  let _ = show "base" Pipeline.Base in
  let spec = show "speculative" Pipeline.Spec_heuristic in
  Printf.printf "\nThe hot loop after promotion (note [ld.sa]/[ld.c] and the\n\
                 write-back at the exit):\n\n";
  print_endline (Pp.func_to_string spec.Sir.syms (Sir.find_func spec "main"))
