(* Quickstart: the paper's Figure 2 end to end.

   Two loads of *p with an intervening store *q that may — but rarely
   does — alias.  Classic PRE must keep the second load; the speculative
   framework replaces it with a check load (ld.c) and turns the first one
   into an advanced load (ld.a), recovering through the ALAT if the alias
   ever materializes.

   Run with: dune exec examples/quickstart.exe *)

open Spec_ir
open Spec_driver

let banner title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

(* Figure 2's program shape: "if we know that there is a small probability
   that *p and *q will access the same memory location, the second load of
   *p can be speculatively removed". *)
let src =
  "int a[4]; int b[4]; \n\
   int main(){ int* p; int* q; int x; int y; \n\
  \  p = &a[0]; q = &b[0]; \n\
  \  if (rnd(100) == 77) q = &a[0];   // 1% real aliasing \n\
  \  x = *p;      // ld.a r32=[r31] \n\
  \  *q = 5;      // the may-alias store \n\
  \  y = *p;      // ld.c r32=[r31] \n\
  \  print_int(x + y); return 0; }"

let () =
  banner "Source (the paper's Figure 2)";
  print_endline src;

  banner "1. Lowered SIR";
  let p = Lower.compile src in
  print_endline (Pp.prog_to_string p);

  banner "2. Speculative SSA form (chi/mu lists with speculation flags)";
  let p2 = Lower.compile src in
  let annot = Spec_alias.Annotate.run p2 in
  Spec_spec.Flags.assign p2 annot Spec_spec.Flags.Heuristic_spec;
  Sir.iter_funcs
    (fun f -> ignore (Spec_cfg.Cfg_utils.split_critical_edges f : int))
    p2;
  ignore (Spec_ssa.Build_ssa.build p2);
  print_endline (Pp.prog_to_string p2);
  print_endline
    "(unflagged chi operands are speculative weak updates the PRE may \
     ignore)";

  banner "3. After speculative SSAPRE (note the [ld.a] and [ld.c] marks)";
  let r = Pipeline.compile_and_optimize src Pipeline.Spec_heuristic in
  print_endline (Pp.prog_to_string r.Pipeline.prog);

  banner "4. ITL machine code";
  let mp = Spec_codegen.Codegen.lower r.Pipeline.prog in
  let f = Hashtbl.find mp.Spec_codegen.Itl.mp_funcs "main" in
  Fmt.pr "%a@." Spec_codegen.Itl.pp_mfunc f;

  banner "5. Execution: base vs speculative on the ITL machine";
  let base = Pipeline.compile_and_optimize src Pipeline.Base in
  let mb = Spec_machine.Machine.run_sir base.Pipeline.prog in
  let ms = Spec_machine.Machine.run_sir r.Pipeline.prog in
  let show name (m : Spec_machine.Machine.result) =
    let perf = m.Spec_machine.Machine.perf in
    Printf.printf
      "%-11s output=%s  loads=%d checks=%d check-misses=%d cycles=%d\n" name
      (String.trim m.Spec_machine.Machine.output)
      (Spec_machine.Machine.loads_retired perf)
      perf.Spec_machine.Machine.checks
      perf.Spec_machine.Machine.check_misses perf.Spec_machine.Machine.cycles
  in
  show "base" mb;
  show "speculative" ms;
  assert (mb.Spec_machine.Machine.output = ms.Spec_machine.Machine.output);
  print_endline "\nOutputs agree; the second load of *p became a free check."
