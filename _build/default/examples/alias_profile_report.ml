(* Inspect an alias profile the way the compiler sees it.

   Profiles the equake kernel's train input and prints, for each indirect
   memory reference site: its kind, how often it executed, and the
   abstract locations (variables / heap allocation sites) it touched with
   their observed frequencies — the LOC sets of §3.2.1 that drive the
   speculation flags.

   Run with: dune exec examples/alias_profile_report.exe [workload] *)

open Spec_ir
open Spec_prof
open Spec_workloads

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "equake" in
  let w = Workloads.find name in
  Printf.printf "Alias profile of %s (train input)\n%s\n\n" name
    w.Workloads.description;
  let prog = Lower.compile (Workloads.train_source w) in
  let prof, _ = Profiler.profile prog in
  let sites =
    Hashtbl.fold (fun s si acc -> (s, si) :: acc) prog.Sir.sites []
    |> List.sort compare
  in
  Printf.printf "%-5s %-7s %-10s %9s  %s\n" "site" "kind" "func" "execs"
    "LOC set (with observed fraction)";
  List.iter
    (fun (s, (si : Sir.site_info)) ->
      match si.Sir.si_kind with
      | Sir.Kcall -> ()
      | Sir.Kiload | Sir.Kistore ->
        let execs = Profile.ref_count prof s in
        if execs > 0 then begin
          let locs = Profile.locs_at prof s in
          let loc_strs =
            Loc.Set.elements locs
            |> List.map (fun l ->
                   Printf.sprintf "%s(%.0f%%)"
                     (Fmt.str "%a" (Loc.pp prog.Sir.syms) l)
                     (100. *. Profile.loc_fraction prof s l))
          in
          Printf.printf "%-5d %-7s %-10s %9d  %s\n" s
            (match si.Sir.si_kind with
             | Sir.Kiload -> "load"
             | Sir.Kistore -> "store"
             | Sir.Kcall -> "call")
            si.Sir.si_func execs
            (String.concat ", " loc_strs)
        end)
    sites;
  Printf.printf
    "\nCall-site side-effect LOC sets (mod / ref):\n";
  List.iter
    (fun (s, (si : Sir.site_info)) ->
      if si.Sir.si_kind = Sir.Kcall then begin
        let mods = Profile.call_mod_locs prof s in
        let refs = Profile.call_ref_locs prof s in
        if not (Loc.Set.is_empty mods && Loc.Set.is_empty refs) then begin
          let show set =
            Loc.Set.elements set
            |> List.map (fun l -> Fmt.str "%a" (Loc.pp prog.Sir.syms) l)
            |> String.concat ", "
          in
          Printf.printf "call@%-4d in %-10s mod={%s} ref={%s}\n" s
            si.Sir.si_func (show mods) (show refs)
        end
      end)
    sites;
  Printf.printf
    "\nTwo references may be speculated across each other exactly when\n\
     these sets are disjoint — and the ALAT catches the runs where the\n\
     profile turns out to be wrong.\n"
