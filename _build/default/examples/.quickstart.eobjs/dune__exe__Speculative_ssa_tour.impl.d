examples/speculative_ssa_tour.ml: Lower Pipeline Pp Printf Sir Spec_alias Spec_cfg Spec_driver Spec_ir Spec_prof Spec_spec Spec_ssa String
