examples/store_promotion.ml: Lower Machine Pipeline Pp Printf Sir Spec_driver Spec_ir Spec_machine Spec_prof
