examples/alias_profile_report.ml: Array Fmt Hashtbl List Loc Lower Printf Profile Profiler Sir Spec_ir Spec_prof Spec_workloads String Sys Workloads
