examples/store_promotion.mli:
