examples/smvp_case_study.ml: Array Experiments List Printf Spec_driver Spec_machine Spec_workloads Sys Workloads
