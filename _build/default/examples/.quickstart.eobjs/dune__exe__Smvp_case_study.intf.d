examples/smvp_case_study.mli:
