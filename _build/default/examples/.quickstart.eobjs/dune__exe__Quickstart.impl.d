examples/quickstart.ml: Fmt Hashtbl Lower Pipeline Pp Printf Sir Spec_alias Spec_cfg Spec_codegen Spec_driver Spec_ir Spec_machine Spec_spec Spec_ssa String
