examples/speculative_ssa_tour.mli:
