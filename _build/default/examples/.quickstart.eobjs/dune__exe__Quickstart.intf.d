examples/quickstart.mli:
