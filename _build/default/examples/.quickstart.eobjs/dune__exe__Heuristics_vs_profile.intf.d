examples/heuristics_vs_profile.mli:
