examples/heuristics_vs_profile.ml: List Machine Pipeline Printf Spec_driver Spec_machine
