examples/alias_profile_report.mli:
