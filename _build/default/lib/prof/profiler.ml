(** Profiling driver: runs a program under the interpreter with
    instrumentation wired to a {!Profile.t}, maintaining the dynamic
    call-site stack so call-site mod/ref LOC sets accumulate the effects of
    entire call subtrees (the paper's per-call-site side-effect LOC
    sets, §3.2.1). *)

open Spec_ir

(** Run [prog] and collect edge + alias profiles.  The profile describes
    the run with whatever inputs the program's [main] sets up; workloads
    profile with their train input and measure with their ref input by
    switching an input-selection global. *)
let profile ?(fuel = 200_000_000) ?(heap_bytes = 24 * 1024 * 1024)
    (prog : Sir.prog) : Profile.t * Interp.result =
  let prof = Profile.create () in
  let mem_ref = ref None in
  let call_stack = ref [] in
  let hooks = Interp.no_hooks () in
  hooks.Interp.on_memory <- (fun m -> mem_ref := Some m);
  hooks.Interp.on_edge <-
    (fun ~func ~src ~dst -> Profile.record_edge prof ~func ~src ~dst);
  hooks.Interp.on_entry <- (fun ~func -> Profile.record_entry prof ~func);
  hooks.Interp.on_call <-
    (fun ~site ~callee:_ -> call_stack := site :: !call_stack);
  hooks.Interp.on_call_ret <-
    (fun ~site:_ ~callee:_ ->
      match !call_stack with
      | _ :: rest -> call_stack := rest
      | [] -> ());
  hooks.Interp.on_mem <-
    (fun ~site ~addr ~is_store ->
      let loc =
        match !mem_ref with
        | Some m -> Memory.loc_of_addr m addr
        | None -> None
      in
      (match site with
       | Some s -> Profile.record_ref prof ~site:s ~loc
       | None -> ());
      List.iter
        (fun cs -> Profile.record_call_effect prof ~site:cs ~loc ~is_store)
        !call_stack);
  let result = Interp.run ~fuel ~heap_bytes ~hooks prog in
  Profile.annotate_block_freqs prof prog;
  prof, result
