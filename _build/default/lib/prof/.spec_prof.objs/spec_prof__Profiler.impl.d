lib/prof/profiler.ml: Interp List Memory Profile Sir Spec_ir
