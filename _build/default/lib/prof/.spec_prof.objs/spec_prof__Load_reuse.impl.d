lib/prof/load_reuse.ml: Hashtbl Interp List Pp Sir Spec_ir Vec
