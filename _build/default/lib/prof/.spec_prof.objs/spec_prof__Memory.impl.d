lib/prof/memory.ml: Array Fmt Hashtbl List Loc Sir Spec_ir Symtab Types
