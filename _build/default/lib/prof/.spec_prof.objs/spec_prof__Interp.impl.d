lib/prof/interp.ml: Buffer Fmt Hashtbl List Memory Printf Sir Spec_ir Symtab Types
