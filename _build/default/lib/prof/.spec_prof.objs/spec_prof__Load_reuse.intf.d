lib/prof/load_reuse.mli: Hashtbl Interp Spec_ir
