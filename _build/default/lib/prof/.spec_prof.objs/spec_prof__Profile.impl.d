lib/prof/profile.ml: Hashtbl List Loc Sir Spec_ir Vec
