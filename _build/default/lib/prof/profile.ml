(** Profile data collected by instrumented interpretation:
    edge profiles (for control speculation) and alias profiles — the LOC
    sets observed at each indirect memory reference and the mod/ref LOC
    sets of each call site (for data speculation), per §3.2.1 of the
    paper. *)

open Spec_ir

type edge_profile = {
  edges : (string * int * int, int) Hashtbl.t;   (* func, from bb, to bb *)
  entries : (string, int) Hashtbl.t;             (* function entry counts *)
}

type alias_profile = {
  ref_locs : (int, (Loc.t, int) Hashtbl.t) Hashtbl.t;
      (* iload/istore site -> LOC -> observation count *)
  ref_counts : (int, int) Hashtbl.t;      (* dynamic execution count *)
  call_mod : (int, Loc.Set.t) Hashtbl.t;  (* call site -> modified LOCs *)
  call_ref : (int, Loc.Set.t) Hashtbl.t;  (* call site -> referenced LOCs *)
}

type t = { edge : edge_profile; alias : alias_profile }

let create () =
  { edge = { edges = Hashtbl.create 256; entries = Hashtbl.create 16 };
    alias =
      { ref_locs = Hashtbl.create 256;
        ref_counts = Hashtbl.create 256;
        call_mod = Hashtbl.create 64;
        call_ref = Hashtbl.create 64 } }

let bump tbl key n =
  Hashtbl.replace tbl key
    (n + (match Hashtbl.find_opt tbl key with Some c -> c | None -> 0))

let record_edge t ~func ~src ~dst = bump t.edge.edges (func, src, dst) 1
let record_entry t ~func = bump t.edge.entries func 1

let add_loc tbl site loc =
  let s =
    match Hashtbl.find_opt tbl site with
    | Some s -> s
    | None -> Loc.Set.empty
  in
  Hashtbl.replace tbl site (Loc.Set.add loc s)

let record_ref t ~site ~(loc : Loc.t option) =
  bump t.alias.ref_counts site 1;
  match loc with
  | None -> ()
  | Some l ->
    let counts =
      match Hashtbl.find_opt t.alias.ref_locs site with
      | Some c -> c
      | None ->
        let c = Hashtbl.create 4 in
        Hashtbl.replace t.alias.ref_locs site c;
        c
    in
    bump counts l 1

let record_call_effect t ~site ~(loc : Loc.t option) ~is_store =
  match loc with
  | None -> ()
  | Some l ->
    if is_store then add_loc t.alias.call_mod site l
    else add_loc t.alias.call_ref site l

(** LOC set observed at an indirect-reference site; empty if the site never
    executed during profiling. *)
let locs_at t site =
  match Hashtbl.find_opt t.alias.ref_locs site with
  | Some counts ->
    Hashtbl.fold (fun l _ acc -> Loc.Set.add l acc) counts Loc.Set.empty
  | None -> Loc.Set.empty

(** Fraction of the site's dynamic executions that touched [loc]. *)
let loc_fraction t site (loc : Loc.t) =
  let total = match Hashtbl.find_opt t.alias.ref_counts site with
    | Some n -> n | None -> 0
  in
  if total = 0 then 0.
  else
    match Hashtbl.find_opt t.alias.ref_locs site with
    | None -> 0.
    | Some counts ->
      (match Hashtbl.find_opt counts loc with
       | Some n -> float_of_int n /. float_of_int total
       | None -> 0.)

(** Fraction of [site]'s executions that touched any location in [locs] —
    the paper's "degree of likeliness" of an alias relation. *)
let overlap_fraction t site (locs : Loc.Set.t) =
  let total = match Hashtbl.find_opt t.alias.ref_counts site with
    | Some n -> n | None -> 0
  in
  if total = 0 then 0.
  else
    match Hashtbl.find_opt t.alias.ref_locs site with
    | None -> 0.
    | Some counts ->
      let hit =
        Hashtbl.fold
          (fun l n acc -> if Loc.Set.mem l locs then acc + n else acc)
          counts 0
      in
      float_of_int hit /. float_of_int total

let ref_count t site =
  match Hashtbl.find_opt t.alias.ref_counts site with
  | Some c -> c
  | None -> 0

let call_mod_locs t site =
  match Hashtbl.find_opt t.alias.call_mod site with
  | Some s -> s
  | None -> Loc.Set.empty

let call_ref_locs t site =
  match Hashtbl.find_opt t.alias.call_ref site with
  | Some s -> s
  | None -> Loc.Set.empty

let edge_count t ~func ~src ~dst =
  match Hashtbl.find_opt t.edge.edges (func, src, dst) with
  | Some c -> c
  | None -> 0

let entry_count t ~func =
  match Hashtbl.find_opt t.edge.entries func with Some c -> c | None -> 0

(** Write block execution frequencies into [bb.freq] for every function
    (entry frequency = call count; other blocks = sum of incoming edges). *)
let annotate_block_freqs t (p : Sir.prog) =
  Sir.iter_funcs
    (fun f ->
      let name = f.Sir.fname in
      Vec.iter
        (fun (b : Sir.bb) ->
          let incoming =
            List.fold_left
              (fun acc pr -> acc + edge_count t ~func:name ~src:pr ~dst:b.Sir.bid)
              0 b.Sir.preds
          in
          let freq =
            if b.Sir.bid = Sir.entry_bid then entry_count t ~func:name
            else incoming
          in
          b.Sir.freq <- float_of_int freq)
        f.Sir.fblocks)
    p
