(** Simulation-based potential-load-reuse analysis (the first estimation
    method of §5.3, after Bodik et al.'s load-reuse analysis).

    Memory references with identical names (scalars) or identical address
    syntax trees (indirect references) form equivalence classes.  Tracking
    the dynamic reference stream, a load is counted as a potential reuse
    when the previous load of the same address in its equivalence class
    produced the same value within the same procedure invocation. *)

open Spec_ir

type class_state = {
  mutable last : (int * Interp.value) option;  (* last (addr, value) *)
  mutable invocation : int;                    (* invocation it was seen in *)
}

type t = {
  mutable total_loads : int;
  mutable reused_loads : int;
  classes : (string, class_state) Hashtbl.t;
  class_key : (int, string) Hashtbl.t;       (* site -> class key cache *)
  mutable cur_invocation : int;
  prog : Sir.prog;
}

let create (prog : Sir.prog) : t =
  { total_loads = 0; reused_loads = 0; classes = Hashtbl.create 64;
    class_key = Hashtbl.create 64; cur_invocation = 0; prog }

(* Equivalence-class key of an indirect load site: the printed address
   syntax tree of its Ilod, qualified by function name.  Computed once per
   site, on demand. *)
let site_key (t : t) site func =
  match Hashtbl.find_opt t.class_key site with
  | Some k -> k
  | None ->
    (* find the Ilod with this site in the program and print its address *)
    let found = ref None in
    (try
       Sir.iter_funcs
         (fun f ->
           Vec.iter
             (fun (b : Sir.bb) ->
               let check_expr e =
                 Sir.iter_subexprs
                   (function
                     | Sir.Ilod (_, a, s) when s = site ->
                       found :=
                         Some (Pp.expr_to_string t.prog.Sir.syms a);
                       raise Exit
                     | _ -> ())
                   e
               in
               List.iter
                 (fun st -> List.iter check_expr (Sir.stmt_exprs st.Sir.kind))
                 b.Sir.stmts;
               List.iter check_expr (Sir.term_exprs b.Sir.term))
             f.Sir.fblocks)
         t.prog
     with Exit -> ());
    let k =
      match !found with
      | Some s -> func ^ ":" ^ s
      | None -> func ^ ":site" ^ string_of_int site
    in
    Hashtbl.replace t.class_key site k;
    k

let state_of t key =
  match Hashtbl.find_opt t.classes key with
  | Some s -> s
  | None ->
    let s = { last = None; invocation = -1 } in
    Hashtbl.replace t.classes key s;
    s

(** Wire the analyser into interpreter hooks. *)
let instrument (t : t) (hooks : Interp.hooks) =
  let prev_entry = hooks.Interp.on_entry in
  hooks.Interp.on_entry <-
    (fun ~func ->
      t.cur_invocation <- t.cur_invocation + 1;
      prev_entry ~func);
  let prev_load = hooks.Interp.on_load in
  hooks.Interp.on_load <-
    (fun ~which ~func ~addr ~v ->
      t.total_loads <- t.total_loads + 1;
      let key =
        match which with
        | `Site s -> site_key t s func
        | `Var vid -> func ^ ":var" ^ string_of_int vid
      in
      let st = state_of t key in
      (match st.last with
       | Some (a, pv) when a = addr && pv = v
                           && st.invocation = t.cur_invocation ->
         t.reused_loads <- t.reused_loads + 1
       | _ -> ());
      st.last <- Some (addr, v);
      st.invocation <- t.cur_invocation;
      prev_load ~which ~func ~addr ~v)

(** Fraction of dynamic loads that are potential (speculative) reuses. *)
let reuse_fraction t =
  if t.total_loads = 0 then 0.
  else float_of_int t.reused_loads /. float_of_int t.total_loads

(** Run a program with load-reuse instrumentation. *)
let analyse ?(fuel = 200_000_000) (prog : Sir.prog) : t * Interp.result =
  let t = create prog in
  let hooks = Interp.no_hooks () in
  instrument t hooks;
  let r = Interp.run ~fuel ~hooks prog in
  t, r
