(** Simulation-based potential-load-reuse analysis (the first estimation
    method of the paper's §5.3, after Bodik et al.): a dynamic load counts
    as a potential reuse when the previous load of the same address in its
    lexical equivalence class produced the same value within the same
    procedure invocation. *)

type t = {
  mutable total_loads : int;
  mutable reused_loads : int;
  classes : (string, class_state) Hashtbl.t;
  class_key : (int, string) Hashtbl.t;
  mutable cur_invocation : int;
  prog : Spec_ir.Sir.prog;
}

and class_state = {
  mutable last : (int * Interp.value) option;
  mutable invocation : int;
}

val create : Spec_ir.Sir.prog -> t

(** Wire the analyser into interpreter hooks (composes with existing
    hooks). *)
val instrument : t -> Interp.hooks -> unit

val reuse_fraction : t -> float

(** Run a program with load-reuse instrumentation. *)
val analyse : ?fuel:int -> Spec_ir.Sir.prog -> t * Interp.result
