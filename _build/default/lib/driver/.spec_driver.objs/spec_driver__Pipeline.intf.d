lib/driver/pipeline.mli: Spec_ir Spec_prof Spec_spec Spec_ssapre
