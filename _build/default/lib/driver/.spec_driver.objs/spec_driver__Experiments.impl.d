lib/driver/experiments.ml: List Load_reuse Lower Machine Pipeline Printf Profiler Spec_codegen Spec_ir Spec_machine Spec_prof Spec_spec Spec_ssapre Spec_workloads Workloads
