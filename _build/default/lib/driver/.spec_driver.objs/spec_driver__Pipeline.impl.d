lib/driver/pipeline.ml: Cfg_utils Flags Hashtbl List Lower Profile Profiler Sir Spec_alias Spec_cfg Spec_ir Spec_prof Spec_spec Spec_ssa Spec_ssapre Ssapre Vec
