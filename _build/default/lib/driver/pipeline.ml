(** Compilation pipelines.

    A pipeline takes a freshly lowered SIR program through the paper's
    analysis and optimization stack:

      alias analysis -> χ/μ annotation -> speculation flags -> HSSA ->
      speculative SSAPRE -> out of SSA

    repeated for a few rounds so loads nested inside other loads (e.g.
    [A\[i\]\[j\]], which is an iload of an iload) get promoted outside-in.
    The resulting program still runs on the reference interpreter and can
    be lowered to the ITL machine. *)

open Spec_ir
open Spec_cfg
open Spec_prof
open Spec_spec
open Spec_ssapre

type variant =
  | Base                         (** -O3-like: nonspeculative PRE *)
  | Spec_profile of Profile.t    (** data speculation from alias profile *)
  | Spec_heuristic               (** data speculation from heuristic rules *)
  | Aggressive                   (** upper bound: ignore aliases, no checks *)
  | Noopt                        (** no PRE at all *)

let variant_name = function
  | Base -> "base"
  | Spec_profile _ -> "profile"
  | Spec_heuristic -> "heuristic"
  | Aggressive -> "aggressive"
  | Noopt -> "noopt"

(** The Aggressive variant reuses the heuristic speculation machinery but
    drops the checks afterwards — it models the paper's §5.3 "aggressive
    register promotion" upper bound, which allocates memory references to
    registers without considering potential aliasing (correct only when no
    aliasing actually occurs at runtime). *)
let strip_checks (prog : Sir.prog) =
  Sir.iter_funcs
    (fun f ->
      Vec.iter
        (fun (b : Sir.bb) ->
          b.Sir.stmts <-
            List.filter
              (fun (s : Sir.stmt) -> s.Sir.mark <> Sir.Mchk)
              b.Sir.stmts)
        f.Sir.fblocks)
    prog

type result = {
  prog : Sir.prog;
  stats : Ssapre.stats;
  variant : variant;
}

let mode_of_variant = function
  | Base | Noopt -> Flags.Nonspec
  | Spec_profile p -> Flags.Profile_spec p
  | Spec_heuristic | Aggressive -> Flags.Heuristic_spec

(** Run the optimizer on [prog] (destructively).  [rounds] bounds the
    outside-in promotion depth; [edge_profile] enables control
    speculation. *)
let optimize ?(rounds = 3) ?(config = None) ?(edge_profile = None)
    ?(strength = true) (prog : Sir.prog) (variant : variant) : result =
  let mode = mode_of_variant variant in
  let base_cfg =
    match config with
    | Some c -> c
    | None -> Ssapre.default_config mode
  in
  let cfg = { base_cfg with Ssapre.mode } in
  (match edge_profile with
   | Some p -> Profile.annotate_block_freqs p prog
   | None -> ());
  let total = ref Ssapre.zero_stats in
  (* flow-sensitive refinement prepass (Figure 4's last stage): build SSA
     once, record definite pointer targets, and feed them to every
     annotation round *)
  let refinements =
    if variant = Noopt then Hashtbl.create 1
    else begin
      ignore (Spec_alias.Annotate.run prog : Spec_alias.Annotate.info);
      Sir.iter_funcs
        (fun f -> ignore (Cfg_utils.split_critical_edges f : int))
        prog;
      ignore (Spec_ssa.Build_ssa.build prog);
      let r = Spec_ssa.Refine.compute prog in
      Spec_ssa.Out_of_ssa.run prog;
      r
    end
  in
  if variant <> Noopt then
    for _round = 1 to rounds do
      let annot = Spec_alias.Annotate.run ~refinements prog in
      Flags.assign ~threshold:cfg.Ssapre.alias_threshold prog annot mode;
      Sir.iter_funcs
        (fun f -> ignore (Cfg_utils.split_critical_edges f : int))
        prog;
      ignore (Spec_ssa.Build_ssa.build prog);
      Sir.iter_funcs
        (fun f ->
          let st = Ssapre.run_func prog annot cfg f in
          total := Ssapre.add_stats !total st)
        prog;
      Spec_ssa.Out_of_ssa.run prog
    done;
  (* store promotion (SPRE of stores): runs on the de-versioned program
     with a fresh annotation; speculative policies allow promotion past
     unlikely-aliasing stores with ld.c recovery *)
  if variant <> Noopt then begin
    let annot = Spec_alias.Annotate.run ~refinements prog in
    let kctx =
      Spec_spec.Kills.create ~alias_threshold:cfg.Ssapre.alias_threshold prog
        annot mode
    in
    ignore (Spec_ssapre.Store_promo.run prog annot kctx
            : Spec_ssapre.Store_promo.stats)
  end;
  if variant <> Noopt && strength then
    ignore (Spec_ssapre.Strength.run prog : Spec_ssapre.Strength.stats);
  if variant <> Noopt then
    ignore (Spec_ssapre.Cleanup.run prog : Spec_ssapre.Cleanup.stats);
  if variant = Aggressive then strip_checks prog;
  { prog; stats = !total; variant }

(** Convenience: compile source and optimize. *)
let compile_and_optimize ?rounds ?config ?edge_profile ?strength src variant =
  let prog = Lower.compile src in
  optimize ?rounds ?config ?edge_profile ?strength prog variant

(** Profile a fresh compile of [src] (with whatever input [main] selects)
    and return the profile for feeding a [Spec_profile] pipeline of
    another compile. *)
let profile_of_source ?fuel src =
  let prog = Lower.compile src in
  let prof, _ = Profiler.profile ?fuel prog in
  prof
