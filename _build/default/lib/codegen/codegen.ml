(** Lowering optimized SIR to ITL.

    Register allocation is virtual: each register-resident SIR variable
    gets one register per activation frame, and expression evaluation uses
    fresh temporaries, modelling IA-64's large stacked register file.  The
    frame's register count is reported for RSE-pressure accounting.

    Speculation marks become load kinds: the load on the right-hand side of
    a [Madv] statement becomes ld.a, of a [Mchk] statement ld.c (same
    destination register as the ld.a, which is how the ALAT ties them
    together), of a [Mcspec] statement ld.s, and of a [Msa] statement
    ld.sa (control+data speculative). *)

open Spec_ir

type env = {
  prog : Sir.prog;
  reg_of : (int, int) Hashtbl.t;     (* orig var id -> register *)
  mutable next_reg : int;
  mutable buf : Itl.insn list;       (* reversed *)
}

let fresh env =
  let r = env.next_reg in
  env.next_reg <- r + 1;
  r

let reg_of_var env vid =
  let ov = (Symtab.orig env.prog.Sir.syms vid).Symtab.vid in
  match Hashtbl.find_opt env.reg_of ov with
  | Some r -> r
  | None ->
    let r = fresh env in
    Hashtbl.replace env.reg_of ov r;
    r

let emit env i = env.buf <- i :: env.buf

(* Lower an expression; [lkind] overrides the kind of the toplevel load
   when the enclosing statement carries a speculation mark. *)
let rec lower_expr ?(lkind = Itl.Lnorm) ?dst env (e : Sir.expr) : int =
  let syms = env.prog.Sir.syms in
  match e with
  | Sir.Const c ->
    let d = match dst with Some d -> d | None -> fresh env in
    emit env (Itl.Movi (d, c));
    d
  | Sir.Lod v ->
    if Symtab.is_mem syms v then begin
      let a = fresh env in
      emit env (Itl.Lea (a, (Symtab.orig syms v).Symtab.vid));
      let d = match dst with Some d -> d | None -> fresh env in
      let fp = Types.is_fp (Symtab.orig syms v).Symtab.vty in
      emit env (Itl.Ld { dst = d; addr = a; fp; kind = lkind });
      d
    end
    else begin
      let r = reg_of_var env v in
      match dst with
      | Some d when d <> r -> emit env (Itl.Mov (d, r)); d
      | _ -> r
    end
  | Sir.Ilod (ty, a, _site) ->
    let ra = lower_expr env a in
    let d = match dst with Some d -> d | None -> fresh env in
    emit env (Itl.Ld { dst = d; addr = ra; fp = Types.is_fp ty; kind = lkind });
    d
  | Sir.Lda v ->
    let d = match dst with Some d -> d | None -> fresh env in
    emit env (Itl.Lea (d, (Symtab.orig syms v).Symtab.vid));
    d
  | Sir.Unop (op, ty, x) ->
    let rx = lower_expr env x in
    let d = match dst with Some d -> d | None -> fresh env in
    emit env (Itl.Un (op, Types.is_fp ty, d, rx));
    d
  | Sir.Binop (op, ty, a, b) ->
    let ra = lower_expr env a in
    let rb = lower_expr env b in
    let d = match dst with Some d -> d | None -> fresh env in
    let fp =
      match op with
      | Sir.Lt | Sir.Le | Sir.Gt | Sir.Ge | Sir.Eq | Sir.Ne ->
        Types.is_fp (Sir.expr_ty syms a)
      | _ -> Types.is_fp ty
    in
    emit env (Itl.Alu (op, fp, d, ra, rb));
    d

let lower_stmt env (s : Sir.stmt) =
  let syms = env.prog.Sir.syms in
  let lkind =
    match s.Sir.mark with
    | Sir.Mnone -> Itl.Lnorm
    | Sir.Madv -> Itl.Ladv
    | Sir.Mchk -> Itl.Lchk
    | Sir.Mcspec -> Itl.Lspec
    | Sir.Msa -> Itl.Lsa
  in
  match s.Sir.kind with
  | Sir.Snop -> ()
  | Sir.Stid (v, e) ->
    if Symtab.is_mem syms v then begin
      let r = lower_expr ~lkind env e in
      let a = fresh env in
      emit env (Itl.Lea (a, (Symtab.orig syms v).Symtab.vid));
      let fp = Types.is_fp (Symtab.orig syms v).Symtab.vty in
      emit env (Itl.St { src = r; addr = a; fp })
    end
    else
      ignore (lower_expr ~lkind ~dst:(reg_of_var env v) env e : int)
  | Sir.Istr (ty, a, e, _site) ->
    let ra = lower_expr env a in
    let rv = lower_expr env e in
    emit env (Itl.St { src = rv; addr = ra; fp = Types.is_fp ty })
  | Sir.Call { callee; args; ret; csite } ->
    let argr = List.map (fun e -> lower_expr env e) args in
    let retr = Option.map (reg_of_var env) ret in
    emit env (Itl.Call { callee; args = argr; ret = retr; site = csite })

let lower_func (prog : Sir.prog) (f : Sir.func) : Itl.mfunc =
  let env =
    { prog; reg_of = Hashtbl.create 32; next_reg = 0; buf = [] }
  in
  let formals = List.map (reg_of_var env) f.Sir.fformals in
  let n = Sir.n_blocks f in
  let blocks =
    Array.init n (fun _ -> { Itl.insns = []; Itl.mterm = Itl.Tret None })
  in
  for bid = 0 to n - 1 do
    let b = Sir.block f bid in
    env.buf <- [];
    List.iter (lower_stmt env) b.Sir.stmts;
    let term =
      match b.Sir.term with
      | Sir.Tgoto t -> Itl.Tbr t
      | Sir.Tcond (e, t, e') ->
        let r = lower_expr env e in
        Itl.Tbc (r, t, e')
      | Sir.Tret None -> Itl.Tret None
      | Sir.Tret (Some e) ->
        let r = lower_expr env e in
        Itl.Tret (Some r)
    in
    blocks.(bid).Itl.insns <- List.rev env.buf;
    blocks.(bid).Itl.mterm <- term
  done;
  { Itl.mf_name = f.Sir.fname; Itl.mf_formals = formals;
    Itl.mf_blocks = blocks; Itl.mf_nregs = env.next_reg }

(** Lower a whole program.  The SIR program must be out of SSA form. *)
let lower (prog : Sir.prog) : Itl.mprog =
  let funcs = Hashtbl.create 16 in
  Sir.iter_funcs
    (fun f -> Hashtbl.replace funcs f.Sir.fname (lower_func prog f))
    prog;
  { Itl.mp_funcs = funcs; Itl.mp_order = prog.Sir.func_order;
    Itl.mp_sir = prog }
