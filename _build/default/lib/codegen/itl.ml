(** ITL: the EPIC-like target instruction set.

    A deliberately small Itanium-flavoured ISA with the features the paper
    depends on: regular, advanced (ld.a), check (ld.c), and
    control-speculative (ld.s) loads, plus ALAT-invalidating stores.
    Registers are virtual and per-activation (modelling the register
    stack); the register-stack accounting in {!Codegen} reports frame
    sizes for the paper's RSE-pressure discussion (§5.2). *)

type reg = int

(** Load kinds mirror the IA-64 data/control speculation forms. *)
type lkind =
  | Lnorm            (** ld *)
  | Ladv             (** ld.a — loads and allocates an ALAT entry *)
  | Lchk             (** ld.c — reloads only if the ALAT entry is gone *)
  | Lspec            (** ld.s — non-faulting control-speculative load *)
  | Lsa              (** ld.sa — non-faulting advanced load (control+data) *)

type insn =
  | Movi of reg * Spec_ir.Sir.const
  | Mov of reg * reg
  | Lea of reg * int
      (** address of a memory-resident variable (data segment or current
          frame); stands for the addl/movl address formation on IA-64 *)
  | Ld of { dst : reg; addr : reg; fp : bool; kind : lkind }
  | St of { src : reg; addr : reg; fp : bool }
  | Alu of Spec_ir.Sir.binop * bool * reg * reg * reg
      (** op, fp, dst, src1, src2 *)
  | Un of Spec_ir.Sir.unop * bool * reg * reg
  | Call of { callee : string; args : reg list; ret : reg option; site : int }

type term =
  | Tbr of int                  (** unconditional branch to block *)
  | Tbc of reg * int * int      (** conditional branch *)
  | Tret of reg option

type mblock = { mutable insns : insn list; mutable mterm : term }

type mfunc = {
  mf_name : string;
  mf_formals : reg list;
  mf_blocks : mblock array;
  mf_nregs : int;               (** registers in this activation frame *)
}

type mprog = {
  mp_funcs : (string, mfunc) Hashtbl.t;
  mp_order : string list;
  mp_sir : Spec_ir.Sir.prog;    (** for global layout and symbol info *)
}

let lkind_str = function
  | Lnorm -> "ld" | Ladv -> "ld.a" | Lchk -> "ld.c" | Lspec -> "ld.s"
  | Lsa -> "ld.sa"

let pp_insn fmt = function
  | Movi (d, Spec_ir.Sir.Cint i) -> Fmt.pf fmt "movi r%d = %d" d i
  | Movi (d, Spec_ir.Sir.Cflt f) -> Fmt.pf fmt "movf r%d = %g" d f
  | Mov (d, s) -> Fmt.pf fmt "mov r%d = r%d" d s
  | Lea (d, v) -> Fmt.pf fmt "lea r%d = &var%d" d v
  | Ld { dst; addr; fp; kind } ->
    Fmt.pf fmt "%s%s r%d = [r%d]" (lkind_str kind) (if fp then "f" else "")
      dst addr
  | St { src; addr; fp } ->
    Fmt.pf fmt "st%s [r%d] = r%d" (if fp then "f" else "") addr src
  | Alu (op, fp, d, a, b) ->
    Fmt.pf fmt "%s%s r%d = r%d, r%d" (Spec_ir.Pp.binop_str op)
      (if fp then "f" else "") d a b
  | Un (op, fp, d, s) ->
    Fmt.pf fmt "%s%s r%d = r%d" (Spec_ir.Pp.unop_str op)
      (if fp then "f" else "") d s
  | Call { callee; args; ret; _ } ->
    (match ret with
     | Some r -> Fmt.pf fmt "call r%d = %s(%a)" r callee
                   (Fmt.list ~sep:Fmt.comma (fun fmt r -> Fmt.pf fmt "r%d" r))
                   args
     | None -> Fmt.pf fmt "call %s(%a)" callee
                 (Fmt.list ~sep:Fmt.comma (fun fmt r -> Fmt.pf fmt "r%d" r))
                 args)

let pp_term fmt = function
  | Tbr b -> Fmt.pf fmt "br B%d" b
  | Tbc (r, t, e) -> Fmt.pf fmt "br.cond r%d ? B%d : B%d" r t e
  | Tret (Some r) -> Fmt.pf fmt "ret r%d" r
  | Tret None -> Fmt.string fmt "ret"

let pp_mfunc fmt (f : mfunc) =
  Fmt.pf fmt "@[<v>%s: (%d regs)@ " f.mf_name f.mf_nregs;
  Array.iteri
    (fun i b ->
      Fmt.pf fmt "@[<v2>B%d:@ " i;
      List.iter (fun ins -> Fmt.pf fmt "%a@ " pp_insn ins) b.insns;
      Fmt.pf fmt "%a@]@ " pp_term b.mterm)
    f.mf_blocks;
  Fmt.pf fmt "@]"
