lib/codegen/codegen.ml: Array Hashtbl Itl List Option Sir Spec_ir Symtab Types
