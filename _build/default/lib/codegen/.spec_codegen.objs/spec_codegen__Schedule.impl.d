lib/codegen/schedule.ml: Array Hashtbl Itl List Option Spec_ir
