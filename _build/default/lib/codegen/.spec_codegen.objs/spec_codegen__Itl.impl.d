lib/codegen/itl.ml: Array Fmt Hashtbl List Spec_ir
