lib/codegen/schedule.mli: Itl
