(** Local (within-block) list scheduling for ITL.

    The paper's Figure 3 lists instruction scheduling among the consumers
    of the speculative framework; in ORC the scheduler is what finally
    hides the latency of the loads PRE could not remove.  This pass
    reorders each block by latency-weighted critical-path list scheduling
    so that independent work fills load-delay slots.

    Reordering discipline:
    - register true/anti/output dependences are respected;
    - memory-touching instructions (loads of any kind, stores, calls)
      keep their original relative order — this preserves ALAT and cache
      behaviour exactly, so the transformation is observationally
      invisible except in cycle counts.  Speculative *cross-store* load
      hoisting is the job of the PRE phase (which inserts the checks that
      make it safe); the scheduler only exploits the freedom that is
      already safe. *)

open Itl

type stats = { mutable blocks : int; mutable moved : int }

let defs_of = function
  | Movi (d, _) | Mov (d, _) | Lea (d, _) | Un (_, _, d, _) -> [ d ]
  | Ld { dst; _ } -> [ dst ]
  | Alu (_, _, d, _, _) -> [ d ]
  | St _ -> []
  | Call { ret; _ } -> (match ret with Some r -> [ r ] | None -> [])

let uses_of = function
  | Movi _ | Lea _ -> []
  | Mov (_, s) | Un (_, _, _, s) -> [ s ]
  | Ld { addr; dst; kind; _ } ->
    (* a check load consumes its own destination's prior value *)
    if kind = Lchk then [ addr; dst ] else [ addr ]
  | Alu (_, _, _, a, b) -> [ a; b ]
  | St { src; addr; _ } -> [ src; addr ]
  | Call { args; _ } -> args

let touches_memory = function
  | Ld _ | St _ | Call _ -> true
  | Movi _ | Mov _ | Lea _ | Alu _ | Un _ -> false

(* optimistic latency estimate, mirroring the machine model's L1 case *)
let latency_of = function
  | Ld { fp = true; kind = Lchk; _ } | Ld { fp = false; kind = Lchk; _ } -> 1
  | Ld { fp = true; _ } -> 9
  | Ld { fp = false; _ } -> 2
  | Alu ((Spec_ir.Sir.Lt | Spec_ir.Sir.Le | Spec_ir.Sir.Gt | Spec_ir.Sir.Ge
         | Spec_ir.Sir.Eq | Spec_ir.Sir.Ne), _, _, _, _) -> 1
  | Alu (_, true, _, _, _) | Un (_, true, _, _) -> 4
  | _ -> 1

let schedule_block (st : stats) (b : mblock) =
  let insns = Array.of_list b.insns in
  let n = Array.length insns in
  if n > 1 then begin
    st.blocks <- st.blocks + 1;
    (* dependence edges i -> j (i must precede j) *)
    let succs = Array.make n [] in
    let npreds = Array.make n 0 in
    let add_edge i j =
      if not (List.mem j succs.(i)) then begin
        succs.(i) <- j :: succs.(i);
        npreds.(j) <- npreds.(j) + 1
      end
    in
    let last_def : (int, int) Hashtbl.t = Hashtbl.create 16 in
    let last_uses : (int, int list) Hashtbl.t = Hashtbl.create 16 in
    let last_mem = ref (-1) in
    for j = 0 to n - 1 do
      let i = insns.(j) in
      List.iter
        (fun r ->
          (* RAW *)
          (match Hashtbl.find_opt last_def r with
           | Some d -> add_edge d j
           | None -> ());
          let cur =
            match Hashtbl.find_opt last_uses r with Some l -> l | None -> []
          in
          Hashtbl.replace last_uses r (j :: cur))
        (uses_of i);
      List.iter
        (fun r ->
          (* WAW *)
          (match Hashtbl.find_opt last_def r with
           | Some d -> add_edge d j
           | None -> ());
          (* WAR *)
          (match Hashtbl.find_opt last_uses r with
           | Some us -> List.iter (fun u -> if u <> j then add_edge u j) us
           | None -> ());
          Hashtbl.replace last_def r j;
          Hashtbl.replace last_uses r [])
        (defs_of i);
      if touches_memory i then begin
        if !last_mem >= 0 then add_edge !last_mem j;
        last_mem := j
      end
    done;
    (* priority: latency-weighted height to the end of the block *)
    let height = Array.make n 0 in
    for j = n - 1 downto 0 do
      let h =
        List.fold_left (fun acc s -> max acc height.(s)) 0 succs.(j)
      in
      height.(j) <- h + latency_of insns.(j)
    done;
    (* greedy list scheduling *)
    let scheduled = ref [] in
    let remaining = ref n in
    let ready = ref [] in
    for j = 0 to n - 1 do
      if npreds.(j) = 0 then ready := j :: !ready
    done;
    while !remaining > 0 do
      match !ready with
      | [] -> failwith "Schedule: dependence cycle"
      | _ ->
        (* pick the ready instruction with the greatest height; break ties
           by original position for determinism *)
        let best =
          List.fold_left
            (fun acc j ->
              match acc with
              | None -> Some j
              | Some k ->
                if height.(j) > height.(k)
                   || (height.(j) = height.(k) && j < k)
                then Some j
                else acc)
            None !ready
        in
        let j = Option.get best in
        ready := List.filter (fun x -> x <> j) !ready;
        scheduled := j :: !scheduled;
        decr remaining;
        List.iter
          (fun s ->
            npreds.(s) <- npreds.(s) - 1;
            if npreds.(s) = 0 then ready := s :: !ready)
          succs.(j)
    done;
    let order = List.rev !scheduled in
    List.iteri (fun pos j -> if pos <> j then st.moved <- st.moved + 1) order;
    b.insns <- List.map (fun j -> insns.(j)) order
  end

(** Schedule every block of every function in place. *)
let run (mp : mprog) : stats =
  let st = { blocks = 0; moved = 0 } in
  Hashtbl.iter
    (fun _ (f : mfunc) -> Array.iter (schedule_block st) f.mf_blocks)
    mp.mp_funcs;
  st
