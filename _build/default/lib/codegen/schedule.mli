(** Local (within-block) latency-weighted list scheduling for ITL.

    Register dependences are respected and memory-touching instructions
    keep their relative order, so ALAT/cache behaviour — and therefore
    every counter except cycles — is untouched.  The pass fills load-delay
    slots with independent work, the role the paper assigns to the
    scheduler downstream of speculative PRE. *)

type stats = { mutable blocks : int; mutable moved : int }

(** Schedule every block of every function, in place. *)
val run : Itl.mprog -> stats
