(** Value and object types of the SIR intermediate representation.

    The representation deliberately keeps a small universe of machine types:
    64-bit integers, 64-bit floats, and pointers.  Every scalar occupies one
    8-byte cell so that the reference interpreter and the machine simulator
    can share a flat, cell-addressed memory model. *)

type ty =
  | Tint                      (** 64-bit signed integer *)
  | Tflt                      (** 64-bit IEEE float *)
  | Tptr of ty                (** pointer to [ty] *)
  | Tvoid                     (** no value; only as a function return type *)

(** Size in bytes of a value of type [ty].  All scalars are one cell. *)
let size_of = function
  | Tint | Tflt | Tptr _ -> 8
  | Tvoid -> 0

let cell_size = 8

let is_fp = function Tflt -> true | Tint | Tptr _ | Tvoid -> false

let is_ptr = function Tptr _ -> true | Tint | Tflt | Tvoid -> false

(** Type pointed to by a pointer type. Raises [Invalid_argument] otherwise. *)
let deref = function
  | Tptr t -> t
  | (Tint | Tflt | Tvoid) as t ->
    invalid_arg (Printf.sprintf "Types.deref: not a pointer (%s)"
                   (match t with Tint -> "int" | Tflt -> "float"
                               | Tvoid -> "void" | Tptr _ -> assert false))

let rec pp fmt = function
  | Tint -> Fmt.string fmt "int"
  | Tflt -> Fmt.string fmt "float"
  | Tptr t -> Fmt.pf fmt "%a*" pp t
  | Tvoid -> Fmt.string fmt "void"

let to_string t = Fmt.str "%a" pp t

let equal (a : ty) (b : ty) = a = b

(** Two types are access-compatible when a memory cell written at one type
    may legitimately be read at the other.  Used by the type-based
    disambiguation in the alias analysis: references of incompatible types
    are assumed not to alias, mirroring the type-based alias analysis the
    paper's baseline compiler uses. *)
let compatible a b =
  match a, b with
  | Tint, Tint | Tflt, Tflt -> true
  | Tptr _, Tptr _ -> true
  (* Pointers are stored as integer cells; int<->ptr access is allowed,
     matching C programs that round-trip pointers through integers. *)
  | Tint, Tptr _ | Tptr _, Tint -> true
  | Tflt, (Tint | Tptr _ | Tvoid) | (Tint | Tptr _ | Tvoid), Tflt -> false
  | Tvoid, _ | _, Tvoid -> false
