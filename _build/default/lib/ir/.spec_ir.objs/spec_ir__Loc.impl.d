lib/ir/loc.ml: Fmt Set Symtab
