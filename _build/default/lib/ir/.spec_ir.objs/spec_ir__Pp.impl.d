lib/ir/pp.ml: Fmt List Sir Symtab Types Vec
