lib/ir/symtab.ml: Printf Types Vec
