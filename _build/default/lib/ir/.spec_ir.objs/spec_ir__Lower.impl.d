lib/ir/lower.ml: Array Ast Hashtbl List Parser Printf Sir Symtab Types Vec
