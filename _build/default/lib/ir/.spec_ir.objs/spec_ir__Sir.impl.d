lib/ir/sir.ml: Hashtbl List Symtab Types Vec
