(** Abstract memory locations (LOCs), the points-to targets of the paper's
    alias profile (after Ghiya et al.): named program variables and heap
    objects named by their allocation site. *)

type t =
  | Lvar of int     (** memory-resident variable, by original variable id *)
  | Lheap of int    (** heap object, named by its allocation (call) site *)

let compare = compare
let equal (a : t) b = a = b

let pp syms fmt = function
  | Lvar v -> Fmt.string fmt (Symtab.name syms v)
  | Lheap site -> Fmt.pf fmt "heap@%d" site

module Set = Set.Make (struct
  type nonrec t = t
  let compare = compare
end)
