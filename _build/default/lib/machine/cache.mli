(** Two-level data-cache model with Itanium-flavoured latencies: integer
    loads hit L1 in 2 cycles, floating-point loads bypass L1 and hit L2
    in 9 cycles (both figures from the paper's §5.2). *)

type t

val create :
  ?l1_kb:int -> ?l2_kb:int -> ?lat_l1:int -> ?lat_l2:int -> ?lat_mem:int ->
  unit -> t

(** Latency in cycles of a load at the given address; updates the cache. *)
val load_latency : t -> fp:bool -> int -> int

(** A store allocates the line in both levels (fire-and-forget). *)
val store : t -> int -> unit
