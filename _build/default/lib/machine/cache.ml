(** Two-level data-cache model with Itanium-flavoured latencies:
    integer loads hit L1 in 2 cycles; floating-point loads bypass L1 and
    hit L2 in 9 cycles (§5.2 of the paper states both numbers); misses go
    to L2 and then memory. *)

type level = {
  tags : int array array;        (* [sets][ways], -1 = invalid *)
  lru : int array array;
  n_sets : int;
  ways : int;
  line_bits : int;
  mutable hits : int;
  mutable misses : int;
}

let mk_level ~size_kb ~ways ~line =
  let line_bits =
    let rec bits n = if n <= 1 then 0 else 1 + bits (n / 2) in
    bits line
  in
  let n_sets = size_kb * 1024 / line / ways in
  { tags = Array.init n_sets (fun _ -> Array.make ways (-1));
    lru = Array.init n_sets (fun _ -> Array.init ways (fun i -> i));
    n_sets; ways; line_bits; hits = 0; misses = 0 }

let probe lvl addr ~allocate =
  let line = addr lsr lvl.line_bits in
  let set = line mod lvl.n_sets in
  let tags = lvl.tags.(set) and lru = lvl.lru.(set) in
  let hit = ref (-1) in
  Array.iteri (fun i t -> if t = line then hit := i) tags;
  if !hit >= 0 then begin
    lvl.hits <- lvl.hits + 1;
    (* move to MRU *)
    Array.iteri (fun i age -> if age < lru.(!hit) then lru.(i) <- lru.(i) + 1)
      lru;
    lru.(!hit) <- 0;
    true
  end
  else begin
    lvl.misses <- lvl.misses + 1;
    if allocate then begin
      (* evict LRU way *)
      let victim = ref 0 in
      Array.iteri (fun i age -> if age > lru.(!victim) then victim := i) lru;
      tags.(!victim) <- line;
      Array.iteri (fun i age -> ignore i; ignore age) lru;
      Array.iteri (fun i age -> lru.(i) <- age + 1) lru;
      lru.(!victim) <- 0
    end;
    false
  end

type t = {
  l1 : level;
  l2 : level;
  lat_l1 : int;
  lat_l2 : int;
  lat_mem : int;
}

let create ?(l1_kb = 16) ?(l2_kb = 256) ?(lat_l1 = 2) ?(lat_l2 = 9)
    ?(lat_mem = 120) () =
  { l1 = mk_level ~size_kb:l1_kb ~ways:4 ~line:64;
    l2 = mk_level ~size_kb:l2_kb ~ways:8 ~line:64;
    lat_l1; lat_l2; lat_mem }

(** Load latency in cycles.  Floating-point loads bypass L1. *)
let load_latency t ~fp addr =
  if fp then begin
    if probe t.l2 addr ~allocate:true then t.lat_l2 else t.lat_mem
  end
  else if probe t.l1 addr ~allocate:true then t.lat_l1
  else if probe t.l2 addr ~allocate:true then t.lat_l2
  else t.lat_mem

(** Stores allocate in both levels (write-allocate, fire-and-forget). *)
let store t addr =
  ignore (probe t.l1 addr ~allocate:true : bool);
  ignore (probe t.l2 addr ~allocate:true : bool)
