(** ITL machine simulator.

    Executes ITL programs over the shared flat memory model while running
    a cycle-approximate in-order core model:

    - single-issue, non-blocking loads: an instruction stalls only when a
      source register is not ready yet (scoreboarding), which is when load
      latency becomes visible;
    - two-level cache with Itanium-flavoured latencies (int L1 hit = 2
      cycles, FP loads bypass L1 and hit L2 = 9 cycles);
    - the ALAT: ld.a allocates entries, stores invalidate them, ld.c
      costs nothing when the entry survives and reloads otherwise;
    - register-stack accounting with spill cycles when the stacked
      register demand exceeds the physical stacked file.

    Absolute cycle counts are not meant to match Itanium hardware; the
    mechanisms (what costs what, what invalidates what) are faithful, so
    relative effects — the paper's metrics — carry over. *)

open Spec_ir
open Spec_prof

exception Machine_error of string

let error fmt = Fmt.kstr (fun s -> raise (Machine_error s)) fmt

type counters = {
  mutable insns : int;
  mutable cycles : int;
  mutable data_cycles : int;        (* stall cycles waiting on loads *)
  mutable loads_plain : int;
  mutable loads_adv : int;
  mutable loads_spec : int;
  mutable checks : int;
  mutable check_misses : int;
  mutable stores : int;
  mutable branches : int;
  mutable rse_stall_cycles : int;
  mutable max_stacked_regs : int;
}

let fresh_counters () =
  { insns = 0; cycles = 0; data_cycles = 0; loads_plain = 0; loads_adv = 0;
    loads_spec = 0; checks = 0; check_misses = 0; stores = 0; branches = 0;
    rse_stall_cycles = 0; max_stacked_regs = 0 }

(** All loads that actually accessed memory. *)
let loads_retired c = c.loads_plain + c.loads_adv + c.loads_spec + c.check_misses

(** All retired load-class instructions including successful checks
    (Figure 11's denominator). *)
let loads_retired_with_checks c = loads_retired c + (c.checks - c.check_misses)

type result = {
  ret_int : int;
  output : string;
  perf : counters;
  alat : Alat.t;
}

type config = {
  physical_stacked_regs : int;
  alat_entries : int;
  call_overhead : int;
  heap_bytes : int;
  fuel : int;
  issue_width : int;
}

let default_config =
  { physical_stacked_regs = 96; alat_entries = 32; call_overhead = 2;
    heap_bytes = 24 * 1024 * 1024; fuel = 400_000_000; issue_width = 2 }

type frame = {
  fr_serial : int;
  ints : int array;
  flts : float array;
  ready : int array;               (* cycle when register becomes ready *)
  prod_load : bool array;          (* producer was a load *)
  addrs : (int, int) Hashtbl.t;    (* memory-resident local -> address *)
}

type state = {
  mp : Spec_codegen.Itl.mprog;
  mem : Memory.t;
  cache : Cache.t;
  alat : Alat.t;
  cfg : config;
  ctrs : counters;
  out : Buffer.t;
  mutable clock : int;
  mutable slot : int;                (* issue slots used in current cycle *)
  mutable rng : int;
  mutable fuel : int;
  mutable frame_serial : int;
  mutable stacked_regs : int;
}

let is_cmp = function
  | Sir.Lt | Sir.Le | Sir.Gt | Sir.Ge | Sir.Eq | Sir.Ne -> true
  | Sir.Add | Sir.Sub | Sir.Mul | Sir.Div | Sir.Rem
  | Sir.Band | Sir.Bor | Sir.Bxor | Sir.Shl | Sir.Shr -> false

(* timing: issue the instruction, stalling until sources are ready.
   [free] instructions (successful checks) retire without consuming an
   issue slot, per the paper's "a successful check costs 0 cycles". *)
let issue ?(free = false) st (fr : frame) ~srcs ~dst ~latency ~is_load =
  st.ctrs.insns <- st.ctrs.insns + 1;
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then error "machine out of fuel";
  let start =
    List.fold_left (fun acc r -> max acc fr.ready.(r)) st.clock srcs
  in
  let stall = start - st.clock in
  if stall > 0
     && List.exists (fun r -> fr.prod_load.(r) && fr.ready.(r) > st.clock) srcs
  then st.ctrs.data_cycles <- st.ctrs.data_cycles + stall;
  if stall > 0 then begin
    st.clock <- start;
    st.slot <- 0
  end;
  if not free then begin
    st.slot <- st.slot + 1;
    if st.slot >= st.cfg.issue_width then begin
      st.slot <- 0;
      st.clock <- st.clock + 1
    end
  end;
  if dst >= 0 then begin
    fr.ready.(dst) <- start + max latency 1;
    fr.prod_load.(dst) <- is_load
  end

let var_addr st (fr : frame) vid =
  let v = Symtab.var st.mp.Spec_codegen.Itl.mp_sir.Sir.syms vid in
  match v.Symtab.vstorage with
  | Symtab.Sglobal -> Memory.global_addr st.mem vid
  | _ ->
    (match Hashtbl.find_opt fr.addrs vid with
     | Some a -> a
     | None -> error "machine: no slot for %s" v.Symtab.vname)

let do_load st (fr : frame) ~fp ~spec addr =
  if fp then
    (if spec then Memory.load_flt_spec st.mem addr
     else Memory.load_flt st.mem addr)
    |> fun f -> `F f
  else
    (if spec then Memory.load_int_spec st.mem addr
     else Memory.load_int st.mem addr)
    |> fun i -> `I i

let rec exec_insn st (fr : frame) (i : Spec_codegen.Itl.insn) =
  let open Spec_codegen.Itl in
  match i with
  | Movi (d, Sir.Cint v) ->
    issue st fr ~srcs:[] ~dst:d ~latency:1 ~is_load:false;
    fr.ints.(d) <- v
  | Movi (d, Sir.Cflt v) ->
    issue st fr ~srcs:[] ~dst:d ~latency:1 ~is_load:false;
    fr.flts.(d) <- v
  | Mov (d, s) ->
    issue st fr ~srcs:[ s ] ~dst:d ~latency:1 ~is_load:false;
    fr.ints.(d) <- fr.ints.(s);
    fr.flts.(d) <- fr.flts.(s)
  | Lea (d, vid) ->
    issue st fr ~srcs:[] ~dst:d ~latency:1 ~is_load:false;
    fr.ints.(d) <- var_addr st fr vid
  | Ld { dst; addr; fp; kind } -> exec_load st fr ~dst ~addr ~fp ~kind
  | St { src; addr; fp } ->
    issue st fr ~srcs:[ src; addr ] ~dst:(-1) ~latency:1 ~is_load:false;
    st.ctrs.stores <- st.ctrs.stores + 1;
    let a = fr.ints.(addr) in
    if fp then Memory.store_flt st.mem a fr.flts.(src)
    else Memory.store_int st.mem a fr.ints.(src);
    Cache.store st.cache a;
    Alat.invalidate_store st.alat ~addr:a ~bytes:Types.cell_size
  | Alu (op, fp, d, a, b) ->
    let latency = if fp && not (is_cmp op) then 4 else 1 in
    issue st fr ~srcs:[ a; b ] ~dst:d ~latency ~is_load:false;
    if fp then begin
      let va = fr.flts.(a) and vb = fr.flts.(b) in
      match op with
      | Sir.Add -> fr.flts.(d) <- va +. vb
      | Sir.Sub -> fr.flts.(d) <- va -. vb
      | Sir.Mul -> fr.flts.(d) <- va *. vb
      | Sir.Div -> fr.flts.(d) <- va /. vb
      | Sir.Lt -> fr.ints.(d) <- (if va < vb then 1 else 0)
      | Sir.Le -> fr.ints.(d) <- (if va <= vb then 1 else 0)
      | Sir.Gt -> fr.ints.(d) <- (if va > vb then 1 else 0)
      | Sir.Ge -> fr.ints.(d) <- (if va >= vb then 1 else 0)
      | Sir.Eq -> fr.ints.(d) <- (if va = vb then 1 else 0)
      | Sir.Ne -> fr.ints.(d) <- (if va <> vb then 1 else 0)
      | Sir.Rem | Sir.Band | Sir.Bor | Sir.Bxor | Sir.Shl | Sir.Shr ->
        error "machine: fp alu %s" (Pp.binop_str op)
    end
    else begin
      let va = fr.ints.(a) and vb = fr.ints.(b) in
      match op with
      | Sir.Add -> fr.ints.(d) <- va + vb
      | Sir.Sub -> fr.ints.(d) <- va - vb
      | Sir.Mul -> fr.ints.(d) <- va * vb
      | Sir.Div ->
        if vb = 0 then error "machine: division by zero";
        fr.ints.(d) <- va / vb
      | Sir.Rem ->
        if vb = 0 then error "machine: remainder by zero";
        fr.ints.(d) <- va mod vb
      | Sir.Band -> fr.ints.(d) <- va land vb
      | Sir.Bor -> fr.ints.(d) <- va lor vb
      | Sir.Bxor -> fr.ints.(d) <- va lxor vb
      | Sir.Shl -> fr.ints.(d) <- va lsl (vb land 63)
      | Sir.Shr -> fr.ints.(d) <- va asr (vb land 63)
      | Sir.Lt -> fr.ints.(d) <- (if va < vb then 1 else 0)
      | Sir.Le -> fr.ints.(d) <- (if va <= vb then 1 else 0)
      | Sir.Gt -> fr.ints.(d) <- (if va > vb then 1 else 0)
      | Sir.Ge -> fr.ints.(d) <- (if va >= vb then 1 else 0)
      | Sir.Eq -> fr.ints.(d) <- (if va = vb then 1 else 0)
      | Sir.Ne -> fr.ints.(d) <- (if va <> vb then 1 else 0)
    end
  | Un (op, fp, d, s) ->
    let latency = if fp then 4 else 1 in
    issue st fr ~srcs:[ s ] ~dst:d ~latency ~is_load:false;
    (match op with
     | Sir.Neg -> if fp then fr.flts.(d) <- -.fr.flts.(s)
       else fr.ints.(d) <- -fr.ints.(s)
     | Sir.Lnot -> fr.ints.(d) <- (if fr.ints.(s) = 0 then 1 else 0)
     | Sir.I2f -> fr.flts.(d) <- float_of_int fr.ints.(s)
     | Sir.F2i -> fr.ints.(d) <- int_of_float fr.flts.(s))
  | Call { callee; args; ret; site } -> exec_call st fr ~callee ~args ~ret ~site

and exec_load st fr ~dst ~addr ~fp ~kind =
  let open Spec_codegen.Itl in
  let a = fr.ints.(addr) in
  match kind with
  | Lchk ->
    st.ctrs.checks <- st.ctrs.checks + 1;
    if Alat.check st.alat ~frame:fr.fr_serial ~reg:dst then
      (* speculation held: value already in dst, the check is free *)
      issue ~free:true st fr ~srcs:[] ~dst:(-1) ~latency:0 ~is_load:false
    else begin
      st.ctrs.check_misses <- st.ctrs.check_misses + 1;
      let latency = Cache.load_latency st.cache ~fp a in
      issue st fr ~srcs:[ addr ] ~dst ~latency ~is_load:true;
      (match do_load st fr ~fp ~spec:false a with
       | `I v -> fr.ints.(dst) <- v
       | `F v -> fr.flts.(dst) <- v);
      (* re-arm: a reloading ld.c behaves like ld.a for later checks *)
      Alat.insert st.alat ~frame:fr.fr_serial ~reg:dst ~addr:a
    end
  | (Lnorm | Ladv | Lspec | Lsa) as k ->
    (match k with
     | Lnorm -> st.ctrs.loads_plain <- st.ctrs.loads_plain + 1
     | Ladv -> st.ctrs.loads_adv <- st.ctrs.loads_adv + 1
     | Lspec | Lsa -> st.ctrs.loads_spec <- st.ctrs.loads_spec + 1
     | Lchk -> assert false);
    let spec = k = Lspec || k = Lsa in
    let latency = Cache.load_latency st.cache ~fp a in
    issue st fr ~srcs:[ addr ] ~dst ~latency ~is_load:true;
    (match do_load st fr ~fp ~spec a with
     | `I v -> fr.ints.(dst) <- v
     | `F v -> fr.flts.(dst) <- v);
    if k = Ladv || k = Lsa then
      Alat.insert st.alat ~frame:fr.fr_serial ~reg:dst ~addr:a

and exec_call st fr ~callee ~args ~ret ~site =
  let open Spec_codegen.Itl in
  let arg_vals = List.map (fun r -> (fr.ints.(r), fr.flts.(r))) args in
  issue st fr ~srcs:args ~dst:(-1) ~latency:1 ~is_load:false;
  if Sir.is_builtin callee then begin
    let result =
      match callee, arg_vals with
      | "malloc", [ (bytes, _) ] -> Memory.malloc st.mem ~site bytes
      | "print_int", [ (v, _) ] ->
        Buffer.add_string st.out (string_of_int v);
        Buffer.add_char st.out '\n';
        0
      | "print_flt", [ (_, v) ] ->
        Buffer.add_string st.out (Printf.sprintf "%.6g" v);
        Buffer.add_char st.out '\n';
        0
      | "seed", [ (s, _) ] -> st.rng <- s; 0
      | "rnd", [ (m, _) ] ->
        if m <= 0 then error "machine: rnd bound";
        st.rng <- (st.rng * 0x5851F42D4C957F2D + 0x14057B7EF767814F) land max_int;
        (st.rng lsr 29) mod m
      | _ -> error "machine: bad builtin call %s/%d" callee (List.length args)
    in
    match ret with
    | Some r ->
      fr.ready.(r) <- st.clock;
      fr.prod_load.(r) <- false;
      fr.ints.(r) <- result
    | None -> ()
  end
  else begin
    st.clock <- st.clock + st.cfg.call_overhead;
    let rv, rf = exec_func st callee arg_vals in
    st.clock <- st.clock + 1;
    match ret with
    | Some r ->
      fr.ready.(r) <- st.clock;
      fr.prod_load.(r) <- false;
      fr.ints.(r) <- rv;
      fr.flts.(r) <- rf
    | None -> ()
  end

and exec_func st name arg_vals : int * float =
  let mf =
    match Hashtbl.find_opt st.mp.Spec_codegen.Itl.mp_funcs name with
    | Some f -> f
    | None -> error "machine: unknown function %s" name
  in
  let sf = Sir.find_func st.mp.Spec_codegen.Itl.mp_sir name in
  let syms = st.mp.Spec_codegen.Itl.mp_sir.Sir.syms in
  st.frame_serial <- st.frame_serial + 1;
  let n = max 1 mf.Spec_codegen.Itl.mf_nregs in
  let fr =
    { fr_serial = st.frame_serial;
      ints = Array.make n 0; flts = Array.make n 0.;
      ready = Array.make n 0; prod_load = Array.make n false;
      addrs = Hashtbl.create 8 }
  in
  (* register-stack accounting *)
  st.stacked_regs <- st.stacked_regs + n;
  if st.stacked_regs > st.ctrs.max_stacked_regs then
    st.ctrs.max_stacked_regs <- st.stacked_regs;
  if st.stacked_regs > st.cfg.physical_stacked_regs then begin
    let spill = min n (st.stacked_regs - st.cfg.physical_stacked_regs) in
    st.ctrs.rse_stall_cycles <- st.ctrs.rse_stall_cycles + (2 * spill);
    st.clock <- st.clock + (2 * spill)
  end;
  let mark = Memory.stack_mark st.mem in
  (* stack slots for memory-resident locals *)
  List.iter
    (fun vid ->
      if Symtab.is_mem syms vid then begin
        let v = Symtab.var syms vid in
        Hashtbl.replace fr.addrs vid
          (Memory.push_frame_var st.mem vid
             (max Types.cell_size v.Symtab.vsize))
      end)
    sf.Sir.flocals;
  (* bind formals *)
  (try
     List.iter2
       (fun vid (vi, vf) ->
         if Symtab.is_mem syms vid then begin
           let v = Symtab.var syms vid in
           let a =
             Memory.push_frame_var st.mem vid
               (max Types.cell_size v.Symtab.vsize)
           in
           Hashtbl.replace fr.addrs vid a;
           if Types.is_fp v.Symtab.vty then Memory.store_flt st.mem a vf
           else Memory.store_int st.mem a vi
         end)
       sf.Sir.fformals arg_vals
   with Invalid_argument _ -> error "machine: arity mismatch for %s" name);
  (* register formals *)
  List.iter2
    (fun r (vi, vf) ->
      if r >= 0 && r < n then begin
        fr.ints.(r) <- vi;
        fr.flts.(r) <- vf
      end)
    mf.Spec_codegen.Itl.mf_formals arg_vals;
  let result = exec_blocks st fr mf in
  Memory.pop_frame st.mem mark;
  st.stacked_regs <- st.stacked_regs - n;
  result

and exec_blocks st (fr : frame) (mf : Spec_codegen.Itl.mfunc) : int * float =
  let open Spec_codegen.Itl in
  let rec run bid =
    let b = mf.mf_blocks.(bid) in
    List.iter (exec_insn st fr) b.insns;
    match b.mterm with
    | Tbr t ->
      st.ctrs.branches <- st.ctrs.branches + 1;
      st.clock <- st.clock + 1;
      run t
    | Tbc (c, t, e) ->
      st.ctrs.branches <- st.ctrs.branches + 1;
      issue st fr ~srcs:[ c ] ~dst:(-1) ~latency:1 ~is_load:false;
      run (if fr.ints.(c) <> 0 then t else e)
    | Tret None -> (0, 0.)
    | Tret (Some r) ->
      issue st fr ~srcs:[ r ] ~dst:(-1) ~latency:1 ~is_load:false;
      (fr.ints.(r), fr.flts.(r))
  in
  run 0

(** Compile-free execution entry: run an ITL program from [main]. *)
let run ?(config = default_config) (mp : Spec_codegen.Itl.mprog) : result =
  let st =
    { mp;
      mem = Memory.create ~heap_bytes:config.heap_bytes
          mp.Spec_codegen.Itl.mp_sir;
      cache = Cache.create ();
      alat = Alat.create ~entries:config.alat_entries ();
      cfg = config;
      ctrs = fresh_counters ();
      out = Buffer.create 256;
      clock = 0;
      slot = 0;
      rng = 88172645463325252;
      fuel = config.fuel;
      frame_serial = 0;
      stacked_regs = 0 }
  in
  let ri, _ = exec_func st "main" [] in
  st.ctrs.cycles <- st.clock;
  { ret_int = ri; output = Buffer.contents st.out; perf = st.ctrs;
    alat = st.alat }

(** Convenience: lower an (out-of-SSA) SIR program and run it. *)
let run_sir ?config (prog : Sir.prog) : result =
  run ?config (Spec_codegen.Codegen.lower prog)
