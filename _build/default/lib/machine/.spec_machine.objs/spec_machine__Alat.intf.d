lib/machine/alat.mli:
