lib/machine/alat.ml: Array Spec_ir
