lib/machine/machine.ml: Alat Array Buffer Cache Fmt Hashtbl List Memory Pp Printf Sir Spec_codegen Spec_ir Spec_prof Symtab Types
