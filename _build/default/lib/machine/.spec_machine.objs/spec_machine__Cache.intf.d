lib/machine/cache.mli:
