(** Advanced Load Address Table model.

    A small set-associative table of advanced-load entries, as on
    Itanium: [ld.a] allocates an entry tagged by its destination register
    and recording the accessed address; stores look the table up by
    address and invalidate overlapping entries; [ld.c] searches by
    register tag — a surviving entry means the speculation held and the
    check costs nothing, a missing entry means the value must be
    reloaded.  Entries are also lost to capacity eviction, which the
    ALAT-size ablation experiment measures. *)

type entry = {
  mutable tag_frame : int;   (* activation serial: models distinct
                                physical registers under the register stack *)
  mutable tag_reg : int;
  mutable addr : int;
  mutable valid : bool;
}

type t = {
  sets : entry array array;      (* [n_sets][assoc] *)
  n_sets : int;
  assoc : int;
  mutable next_victim : int;
  mutable inserts : int;
  mutable store_invalidations : int;
  mutable capacity_evictions : int;
}

let create ?(entries = 32) ?(assoc = 2) () =
  let n_sets = max 1 (entries / assoc) in
  { sets =
      Array.init n_sets (fun _ ->
          Array.init assoc (fun _ ->
              { tag_frame = -1; tag_reg = -1; addr = 0; valid = false }));
    n_sets; assoc; next_victim = 0;
    inserts = 0; store_invalidations = 0; capacity_evictions = 0 }

let set_index t addr = (addr lsr 3) land (t.n_sets - 1)

(** Allocate an entry for an advanced load. *)
let insert t ~frame ~reg ~addr =
  t.inserts <- t.inserts + 1;
  (* an existing entry with the same register tag is replaced *)
  Array.iter
    (fun set ->
      Array.iter
        (fun e ->
          if e.valid && e.tag_frame = frame && e.tag_reg = reg then
            e.valid <- false)
        set)
    t.sets;
  let set = t.sets.(set_index t addr) in
  let victim =
    let rec find i = if i >= t.assoc then None
      else if not set.(i).valid then Some set.(i) else find (i + 1)
    in
    match find 0 with
    | Some e -> e
    | None ->
      t.capacity_evictions <- t.capacity_evictions + 1;
      t.next_victim <- (t.next_victim + 1) mod t.assoc;
      set.(t.next_victim)
  in
  victim.tag_frame <- frame;
  victim.tag_reg <- reg;
  victim.addr <- addr;
  victim.valid <- true

(** A store to [addr] of [bytes] invalidates overlapping entries. *)
let invalidate_store t ~addr ~bytes =
  Array.iter
    (fun set ->
      Array.iter
        (fun e ->
          if e.valid && e.addr < addr + bytes
             && addr < e.addr + Spec_ir.Types.cell_size
          then begin
            e.valid <- false;
            t.store_invalidations <- t.store_invalidations + 1
          end)
        set)
    t.sets

(** Check load: does the entry for (frame, reg) survive? *)
let check t ~frame ~reg =
  Array.exists
    (fun set ->
      Array.exists
        (fun e -> e.valid && e.tag_frame = frame && e.tag_reg = reg)
        set)
    t.sets
