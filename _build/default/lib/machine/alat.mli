(** Advanced Load Address Table model (IA-64-style).

    [ld.a] allocates an entry tagged by its destination register and the
    accessed address; stores invalidate overlapping entries; [ld.c]
    queries by register tag — a surviving entry means the data
    speculation held. Entries are also lost to capacity eviction, which
    the ALAT-size ablation measures. *)

type entry = {
  mutable tag_frame : int;
  mutable tag_reg : int;
  mutable addr : int;
  mutable valid : bool;
}

type t = {
  sets : entry array array;
  n_sets : int;
  assoc : int;
  mutable next_victim : int;
  mutable inserts : int;
  mutable store_invalidations : int;
  mutable capacity_evictions : int;
}

(** [create ~entries ~assoc ()] — default 32 entries, 2-way. *)
val create : ?entries:int -> ?assoc:int -> unit -> t

(** Allocate an entry for an advanced load.  An existing entry with the
    same (frame, reg) tag is replaced; a full set evicts a victim.
    [frame] is the activation serial, standing in for the distinct
    physical registers of the register stack. *)
val insert : t -> frame:int -> reg:int -> addr:int -> unit

(** A store of [bytes] at [addr] invalidates every overlapping entry. *)
val invalidate_store : t -> addr:int -> bytes:int -> unit

(** Check-load query: does the entry for (frame, reg) survive? *)
val check : t -> frame:int -> reg:int -> bool
