lib/spec/flags.ml: List Loc Profile Sir Spec_alias Spec_ir Spec_prof Symtab Vec
