lib/spec/flags.mli: Spec_alias Spec_ir Spec_prof
