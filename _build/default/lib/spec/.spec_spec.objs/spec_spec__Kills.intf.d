lib/spec/kills.mli: Flags Spec_alias Spec_ir
