lib/spec/kills.ml: Flags Hashtbl List Loc Pp Profile Sir Spec_alias Spec_ir Spec_prof Symtab
