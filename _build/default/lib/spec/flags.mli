(** Speculative SSA form: speculation-flag assignment to χ/μ operands
    (§3.2.1–§3.2.2 of the paper).

    A flagged χ (χs) is highly likely to be substantiated at runtime and
    must not be ignored; an unflagged χ is a speculative weak update that
    speculative optimization may ignore at the price of a runtime check. *)

type mode =
  | Nonspec
      (** baseline: every may-alias operand is flagged (kills) *)
  | Profile_spec of Spec_prof.Profile.t
      (** flags from the alias profile's LOC sets (§3.2.1) *)
  | Heuristic_spec
      (** flags from the paper's three heuristic rules (§3.2.2) *)

val mode_name : mode -> string

(** LOC of a memory-resident variable (by any of its SSA versions). *)
val var_loc : Spec_ir.Symtab.t -> int -> Spec_ir.Loc.t

(** Assign speculation flags to every statement's χ/μ operands.  Must run
    after χ/μ annotation; flags survive SSA renaming (they live on the
    operand records).  [threshold] is the degree-of-likeliness knob: an
    alias relation observed in at most this fraction of a site's profiled
    executions stays speculative (default 0 = the paper's "observed at
    all" criterion). *)
val assign :
  ?threshold:float ->
  Spec_ir.Sir.prog ->
  Spec_alias.Annotate.info ->
  mode ->
  unit
