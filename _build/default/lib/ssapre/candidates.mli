(** PRE candidate expressions and their lexical keys.

    A candidate is a maximal first-order expression: an indirect load with
    a pure address, a direct load of a memory-resident variable, or (when
    arithmetic PRE is on) a maximal pure arithmetic subtree.  Loads nested
    inside other loads become candidates in a later pipeline round. *)

(** Pure expressions touch no memory. *)
val is_pure : Spec_ir.Symtab.t -> Spec_ir.Sir.expr -> bool

val is_const : Spec_ir.Sir.expr -> bool

(** Deversioned lexical key: equal keys = same static expression. *)
val key_of : Spec_ir.Symtab.t -> Spec_ir.Sir.expr -> string

(** Deversioned original-variable leaves, sorted. *)
val leaves : Spec_ir.Symtab.t -> Spec_ir.Sir.expr -> int list

(** Candidate classification of a (sub)expression at its root. *)
val classify :
  Spec_ir.Symtab.t -> arith_pre:bool -> Spec_ir.Sir.expr ->
  Spec_spec.Kills.target option

(** Visit maximal candidates in deterministic preorder. *)
val iter_candidates :
  Spec_ir.Symtab.t -> arith_pre:bool ->
  (string -> Spec_spec.Kills.target -> Spec_ir.Sir.expr -> unit) ->
  Spec_ir.Sir.expr -> unit

(** Rewrite maximal candidates; traversal matches {!iter_candidates} and
    the per-key occurrence counter is threaded through [counts]. *)
val rewrite_candidates :
  Spec_ir.Symtab.t -> arith_pre:bool -> (string, int) Hashtbl.t ->
  (string -> int -> Spec_ir.Sir.expr -> Spec_ir.Sir.expr option) ->
  Spec_ir.Sir.expr -> Spec_ir.Sir.expr
