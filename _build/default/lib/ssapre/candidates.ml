(** PRE candidate expressions and their lexical keys.

    SSAPRE works one lexically-identified expression at a time.  A
    candidate is a *maximal first-order* expression: an indirect load whose
    address is pure (no memory access), a direct load of a memory-resident
    variable, or (when arithmetic PRE is enabled) a maximal pure arithmetic
    subtree.  Loads nested inside other loads become candidates in a later
    round, after the inner load has been PREed into a temporary. *)

open Spec_ir

(** Pure expressions touch no memory: constants, addresses, and
    register-resident variable reads. *)
let rec is_pure syms (e : Sir.expr) =
  match e with
  | Sir.Const _ | Sir.Lda _ -> true
  | Sir.Lod v -> not (Symtab.is_mem syms v)
  | Sir.Unop (_, _, x) -> is_pure syms x
  | Sir.Binop (_, _, a, b) -> is_pure syms a && is_pure syms b
  | Sir.Ilod _ -> false

let rec is_const = function
  | Sir.Const _ -> true
  | Sir.Unop (_, _, x) -> is_const x
  | Sir.Binop (_, _, a, b) -> is_const a && is_const b
  | Sir.Lod _ | Sir.Lda _ | Sir.Ilod _ -> false

(** Deversioned lexical key: two occurrences with the same key denote the
    same static expression. *)
let key_of syms (e : Sir.expr) =
  let dv = Sir.map_expr_uses (fun v -> (Symtab.orig syms v).Symtab.vid) e in
  let buf = Buffer.create 32 in
  let rec go = function
    | Sir.Const (Sir.Cint i) -> Buffer.add_string buf ("#" ^ string_of_int i)
    | Sir.Const (Sir.Cflt f) -> Buffer.add_string buf ("#f" ^ string_of_float f)
    | Sir.Lod v -> Buffer.add_string buf ("v" ^ string_of_int v)
    | Sir.Lda v -> Buffer.add_string buf ("&" ^ string_of_int v)
    | Sir.Ilod (t, a, _) ->
      Buffer.add_string buf ("*[" ^ Types.to_string t ^ "]");
      Buffer.add_char buf '(';
      go a;
      Buffer.add_char buf ')'
    | Sir.Unop (o, _, x) ->
      Buffer.add_string buf (Pp.unop_str o);
      Buffer.add_char buf '(';
      go x;
      Buffer.add_char buf ')'
    | Sir.Binop (o, t, a, b) ->
      Buffer.add_char buf '(';
      go a;
      Buffer.add_string buf (Pp.binop_str o ^ Types.to_string t);
      go b;
      Buffer.add_char buf ')'
  in
  go dv;
  Buffer.contents buf

(** Deversioned original-variable leaves of an expression. *)
let leaves syms (e : Sir.expr) =
  let acc = ref [] in
  Sir.iter_expr_uses
    (fun v ->
      let ov = (Symtab.orig syms v).Symtab.vid in
      if not (List.mem ov !acc) then acc := ov :: !acc)
    e;
  List.sort compare !acc

(** Is [e] a candidate (at the top of its subtree)? *)
let classify syms ~arith_pre (e : Sir.expr) : Spec_spec.Kills.target option =
  match e with
  | Sir.Ilod (_, a, site) when is_pure syms a ->
    Some (Spec_spec.Kills.Tsite site)
  | Sir.Lod v when Symtab.is_mem syms v ->
    Some (Spec_spec.Kills.Tvar (Symtab.orig syms v).Symtab.vid)
  | Sir.Binop (_, _, a, b)
    when arith_pre && is_pure syms e && not (is_const e)
         && not (is_const a && is_const b) ->
    Some Spec_spec.Kills.Tpure
  | _ -> None

(** Visit the maximal candidate subexpressions of [e] in deterministic
    (pre-order, left-to-right) order.  [f key target expr] is called for
    each; non-candidates are descended into. *)
let rec iter_candidates syms ~arith_pre f (e : Sir.expr) =
  match classify syms ~arith_pre e with
  | Some target -> f (key_of syms e) target e
  | None -> (
      match e with
      | Sir.Const _ | Sir.Lod _ | Sir.Lda _ -> ()
      | Sir.Ilod (_, a, _) -> iter_candidates syms ~arith_pre f a
      | Sir.Unop (_, _, x) -> iter_candidates syms ~arith_pre f x
      | Sir.Binop (_, _, a, b) ->
        iter_candidates syms ~arith_pre f a;
        iter_candidates syms ~arith_pre f b)

(** Rewrite the maximal candidates of [e]: [f key idx expr] returns
    [Some e'] to replace the [idx]-th candidate with key [key], or [None]
    to keep it.  Traversal order matches {!iter_candidates}; [idx] counts
    candidates *with the same key* within one enclosing statement, tracked
    by the caller-supplied counter table. *)
let rewrite_candidates syms ~arith_pre (counts : (string, int) Hashtbl.t) f e =
  let rec go e =
    match classify syms ~arith_pre e with
    | Some _ ->
      let key = key_of syms e in
      let idx =
        match Hashtbl.find_opt counts key with Some i -> i | None -> 0
      in
      Hashtbl.replace counts key (idx + 1);
      (match f key idx e with Some e' -> e' | None -> e)
    | None -> (
        match e with
        | Sir.Const _ | Sir.Lod _ | Sir.Lda _ -> e
        | Sir.Ilod (t, a, s) -> Sir.Ilod (t, go a, s)
        | Sir.Unop (o, t, x) -> Sir.Unop (o, t, go x)
        | Sir.Binop (o, t, a, b) ->
          let a' = go a in
          let b' = go b in
          Sir.Binop (o, t, a', b'))
  in
  go e
