(** Scalar cleanup: constant folding, block-local copy/constant
    propagation, and liveness-based dead-code elimination over
    register-resident variables.  Statements with speculation marks are
    never deleted, and a check load's destination counts as used (ld.c
    conditionally preserves it). *)

type stats = {
  mutable folded : int;
  mutable propagated : int;
  mutable removed : int;
}

val run : Spec_ir.Sir.prog -> stats
