lib/ssapre/strength.mli: Spec_ir
