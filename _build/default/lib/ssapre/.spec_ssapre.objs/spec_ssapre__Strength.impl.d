lib/ssapre/strength.ml: Cfg_utils Dom Hashtbl List Printf Sir Spec_cfg Spec_ir Symtab Types Vec
