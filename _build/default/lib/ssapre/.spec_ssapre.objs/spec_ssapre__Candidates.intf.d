lib/ssapre/candidates.mli: Hashtbl Spec_ir Spec_spec
