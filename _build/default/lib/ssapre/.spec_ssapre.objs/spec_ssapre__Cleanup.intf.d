lib/ssapre/cleanup.mli: Spec_ir
