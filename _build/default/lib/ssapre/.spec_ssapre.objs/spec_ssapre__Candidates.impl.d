lib/ssapre/candidates.ml: Buffer Hashtbl List Pp Sir Spec_ir Spec_spec Symtab Types
