lib/ssapre/store_promo.mli: Spec_alias Spec_ir Spec_spec
