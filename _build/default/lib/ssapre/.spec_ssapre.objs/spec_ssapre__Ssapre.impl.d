lib/ssapre/ssapre.ml: Array Candidates Dom Flags Hashtbl Kills List Printf Sir Spec_alias Spec_cfg Spec_ir Spec_spec Symtab Vec
