lib/ssapre/cleanup.ml: Array Hashtbl Int List Set Sir Spec_cfg Spec_ir Symtab Types Vec
