lib/ssapre/store_promo.ml: Cfg_utils Dom Hashtbl Kills List Loc Pp Printf Sir Spec_alias Spec_cfg Spec_ir Spec_spec Symtab Types
