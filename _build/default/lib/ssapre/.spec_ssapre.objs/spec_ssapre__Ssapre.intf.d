lib/ssapre/ssapre.mli: Spec_alias Spec_ir Spec_spec
