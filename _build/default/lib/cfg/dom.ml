(** Dominator analysis: immediate dominators by the Cooper–Harvey–Kennedy
    iterative algorithm, the dominator tree, dominance frontiers, and
    iterated dominance frontiers (DF+), the insertion-point engine for both
    SSA phi insertion and SSAPRE Phi insertion. *)

open Spec_ir

type t = {
  func : Sir.func;
  rpo : int array;              (** blocks in reverse postorder *)
  rpo_index : int array;        (** block id -> position in [rpo] *)
  idom : int array;             (** immediate dominator; entry maps to itself *)
  children : int list array;    (** dominator-tree children *)
  df : int list array;          (** dominance frontier per block *)
  dt_pre : int array;           (** dominator-tree preorder number *)
  dt_last : int array;          (** max preorder number in the subtree *)
}

let compute_rpo (f : Sir.func) =
  let n = Sir.n_blocks f in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs (Sir.succs (Sir.block f b));
      order := b :: !order
    end
  in
  dfs Sir.entry_bid;
  let rpo = Array.of_list !order in
  let rpo_index = Array.make n (-1) in
  Array.iteri (fun i b -> rpo_index.(b) <- i) rpo;
  rpo, rpo_index

(** Cooper–Harvey–Kennedy "engineered" iterative dominator computation. *)
let compute_idom (f : Sir.func) rpo rpo_index =
  let n = Sir.n_blocks f in
  let idom = Array.make n (-1) in
  idom.(Sir.entry_bid) <- Sir.entry_bid;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while rpo_index.(!a) > rpo_index.(!b) do a := idom.(!a) done;
      while rpo_index.(!b) > rpo_index.(!a) do b := idom.(!b) done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> Sir.entry_bid then begin
          let preds =
            List.filter (fun p -> idom.(p) >= 0) (Sir.block f b).Sir.preds
          in
          match preds with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if idom.(b) <> new_idom then begin
              idom.(b) <- new_idom;
              changed := true
            end
        end)
      rpo
  done;
  idom

let compute_df (f : Sir.func) idom =
  let n = Sir.n_blocks f in
  let df = Array.make n [] in
  for b = 0 to n - 1 do
    (* walk from every predecessor; for single-pred blocks (other than a
       back edge into the entry) the walk is empty, so this is cheap *)
    let preds = (Sir.block f b).Sir.preds in
    let add runner =
      if not (List.mem b df.(runner)) then df.(runner) <- b :: df.(runner)
    in
    if preds <> [] then
      List.iter
        (fun p ->
          if idom.(p) >= 0 then
            if b = Sir.entry_bid then begin
              (* back edge into the entry: no strict dominator of the entry
                 exists, so the walk includes every dominator of [p] up to
                 and including the entry itself *)
              let runner = ref p in
              let fin = ref false in
              while not !fin do
                add !runner;
                if !runner = Sir.entry_bid then fin := true
                else runner := idom.(!runner)
              done
            end
            else begin
              let runner = ref p in
              while !runner <> idom.(b) do
                add !runner;
                runner := idom.(!runner)
              done
            end)
        preds
  done;
  df

let compute (f : Sir.func) : t =
  Sir.recompute_preds f;
  let n = Sir.n_blocks f in
  let rpo, rpo_index = compute_rpo f in
  let idom = compute_idom f rpo rpo_index in
  let children = Array.make n [] in
  Array.iter
    (fun b ->
      if b <> Sir.entry_bid && idom.(b) >= 0 then
        children.(idom.(b)) <- b :: children.(idom.(b)))
    rpo;
  (* keep children sorted for deterministic traversals *)
  Array.iteri (fun i c -> children.(i) <- List.sort compare c) children;
  let df = compute_df f idom in
  let dt_pre = Array.make n (-1) in
  let dt_last = Array.make n (-1) in
  let counter = ref 0 in
  let rec number b =
    dt_pre.(b) <- !counter;
    incr counter;
    List.iter number children.(b);
    dt_last.(b) <- !counter - 1
  in
  number Sir.entry_bid;
  { func = f; rpo; rpo_index; idom; children; df; dt_pre; dt_last }

let idom t b = t.idom.(b)

(** [dominates t a b]: block [a] dominates block [b] (reflexive). *)
let dominates t a b =
  t.dt_pre.(b) >= 0 && t.dt_pre.(a) >= 0
  && t.dt_pre.(a) <= t.dt_pre.(b)
  && t.dt_last.(b) <= t.dt_last.(a)

let strictly_dominates t a b = a <> b && dominates t a b

let dominance_frontier t b = t.df.(b)

(** Iterated dominance frontier of a set of blocks. *)
let df_plus t (blocks : int list) : int list =
  let n = Array.length t.df in
  let in_set = Array.make n false in
  let worklist = Queue.create () in
  List.iter (fun b -> Queue.add b worklist) blocks;
  let result = ref [] in
  while not (Queue.is_empty worklist) do
    let b = Queue.pop worklist in
    List.iter
      (fun d ->
        if not in_set.(d) then begin
          in_set.(d) <- true;
          result := d :: !result;
          Queue.add d worklist
        end)
      t.df.(b)
  done;
  List.sort compare !result

(** Dominator-tree preorder walk, the traversal order of SSA renaming. *)
let preorder t : int list =
  let rec go b = b :: List.concat_map go t.children.(b) in
  go Sir.entry_bid

let reverse_postorder t = Array.to_list t.rpo
