(** Dominator analysis.

    Immediate dominators are computed with the Cooper–Harvey–Kennedy
    iterative algorithm; the module also exposes the dominator tree,
    dominance frontiers, and iterated dominance frontiers — the insertion
    engine behind both SSA phi placement and SSAPRE Phi placement. *)

type t = {
  func : Spec_ir.Sir.func;
  rpo : int array;             (** blocks in reverse postorder *)
  rpo_index : int array;       (** block id -> position in [rpo] *)
  idom : int array;            (** immediate dominator; entry maps to itself *)
  children : int list array;   (** dominator-tree children, sorted *)
  df : int list array;         (** dominance frontier per block *)
  dt_pre : int array;          (** dominator-tree preorder number *)
  dt_last : int array;         (** max preorder number within the subtree *)
}

(** Reverse postorder over reachable blocks, plus the inverse index.
    Exposed for tests and for passes that need an RPO without full
    dominance. *)
val compute_rpo : Spec_ir.Sir.func -> int array * int array

(** Compute dominators, the dominator tree, and dominance frontiers.
    Recomputes predecessor lists first. *)
val compute : Spec_ir.Sir.func -> t

(** Immediate dominator of a block ([-1] for unreachable blocks). *)
val idom : t -> int -> int

(** [dominates t a b] — block [a] dominates block [b] (reflexively).
    Constant time via preorder intervals. *)
val dominates : t -> int -> int -> bool

val strictly_dominates : t -> int -> int -> bool

val dominance_frontier : t -> int -> int list

(** Iterated dominance frontier (DF+) of a block set, sorted. *)
val df_plus : t -> int list -> int list

(** Dominator-tree preorder walk starting at the entry — the traversal
    order of SSA renaming. *)
val preorder : t -> int list

val reverse_postorder : t -> int list
