lib/cfg/cfg_utils.mli: Dom Spec_ir
