lib/cfg/dom.mli: Spec_ir
