lib/cfg/dom.ml: Array List Queue Sir Spec_ir
