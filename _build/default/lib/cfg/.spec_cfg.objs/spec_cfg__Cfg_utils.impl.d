lib/cfg/cfg_utils.ml: Array Dom Hashtbl List Printf Sir Spec_ir
