(** CFG normalization utilities: critical-edge splitting (required before
    SSAPRE insertion and before out-of-SSA copy placement) and natural-loop
    detection (used by the loop-aware heuristics and by tests). *)

open Spec_ir

(** Split every critical edge (from a block with several successors to a
    block with several predecessors) by inserting an empty block.
    Returns the number of edges split. *)
let split_critical_edges (f : Sir.func) : int =
  Sir.recompute_preds f;
  let split = ref 0 in
  let n = Sir.n_blocks f in
  for b = 0 to n - 1 do
    let blk = Sir.block f b in
    match blk.Sir.term with
    | Sir.Tcond (e, t, e') when t <> e' ->
      let maybe_split target =
        let tgt = Sir.block f target in
        if List.length tgt.Sir.preds >= 2 then begin
          let nb = Sir.new_bb f in
          nb.Sir.term <- Sir.Tgoto target;
          incr split;
          nb.Sir.bid
        end
        else target
      in
      let t' = maybe_split t in
      let e2 = maybe_split e' in
      if t' <> t || e2 <> e' then blk.Sir.term <- Sir.Tcond (e, t', e2)
    | Sir.Tcond _ | Sir.Tgoto _ | Sir.Tret _ -> ()
  done;
  Sir.recompute_preds f;
  !split

type loop = {
  header : int;
  body : int list;       (** blocks in the loop, including the header *)
  back_edges : int list; (** sources of back edges into the header *)
  depth : int;           (** nesting depth, 1 = outermost *)
}

(** Natural loops from back edges (edges whose target dominates the source).
    Loops sharing a header are merged. *)
let natural_loops (f : Sir.func) (dom : Dom.t) : loop list =
  let n = Sir.n_blocks f in
  let by_header = Hashtbl.create 8 in
  for b = 0 to n - 1 do
    List.iter
      (fun s ->
        if Dom.dominates dom s b then begin
          (* b -> s is a back edge with header s *)
          let body = Hashtbl.create 8 in
          Hashtbl.replace body s ();
          let stack = ref [ b ] in
          while !stack <> [] do
            match !stack with
            | [] -> ()
            | x :: rest ->
              stack := rest;
              if not (Hashtbl.mem body x) then begin
                Hashtbl.replace body x ();
                List.iter (fun p -> stack := p :: !stack)
                  (Sir.block f x).Sir.preds
              end
          done;
          let prev =
            match Hashtbl.find_opt by_header s with
            | Some (bodies, backs) -> bodies, backs
            | None -> [], []
          in
          Hashtbl.replace by_header s
            (Hashtbl.fold (fun k () acc -> k :: acc) body [] :: fst prev,
             b :: snd prev)
        end)
      (Sir.succs (Sir.block f b))
  done;
  let loops =
    Hashtbl.fold
      (fun header (bodies, backs) acc ->
        let body =
          List.sort_uniq compare (List.concat bodies)
        in
        { header; body; back_edges = backs; depth = 0 } :: acc)
      by_header []
  in
  (* nesting depth: count how many loops contain each header *)
  List.map
    (fun l ->
      let depth =
        List.length
          (List.filter (fun l' -> List.mem l.header l'.body) loops)
      in
      { l with depth })
    loops
  |> List.sort (fun a b -> compare a.header b.header)

(** Loop nesting depth of every block (0 = not in any loop). *)
let loop_depths (f : Sir.func) (dom : Dom.t) : int array =
  let n = Sir.n_blocks f in
  let depths = Array.make n 0 in
  List.iter
    (fun l -> List.iter (fun b -> depths.(b) <- depths.(b) + 1) l.body)
    (natural_loops f dom);
  depths

(** Check structural CFG invariants; raises [Failure] with a description on
    violation.  Used by tests and as a debugging aid between passes. *)
let validate (f : Sir.func) =
  let n = Sir.n_blocks f in
  (* range checks first; only then is it safe to recompute preds *)
  for b = 0 to n - 1 do
    let blk = Sir.block f b in
    if blk.Sir.bid <> b then failwith "block id does not match table index";
    List.iter
      (fun s ->
        if s < 0 || s >= n then
          failwith (Printf.sprintf "B%d has out-of-range successor %d" b s))
      (Sir.succs blk)
  done;
  Sir.recompute_preds f;
  for b = 0 to n - 1 do
    List.iter
      (fun s ->
        if not (List.mem b (Sir.block f s).Sir.preds) then
          failwith (Printf.sprintf "edge B%d->B%d missing from preds" b s))
      (Sir.succs (Sir.block f b))
  done;
  let rpo, _ = Dom.compute_rpo f in
  if Array.length rpo = 0 || rpo.(0) <> Sir.entry_bid then
    failwith "entry block is not first in RPO"
