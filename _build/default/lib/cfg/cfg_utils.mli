(** CFG normalization and structure utilities. *)

(** Split every critical edge by inserting an empty block; returns the
    number of edges split.  Required before SSAPRE insertion (insertions
    land at predecessor ends) and idempotent. *)
val split_critical_edges : Spec_ir.Sir.func -> int

type loop = {
  header : int;
  body : int list;        (** blocks in the loop, including the header *)
  back_edges : int list;  (** sources of back edges into the header *)
  depth : int;            (** nesting depth, 1 = outermost *)
}

(** Natural loops from back edges; loops sharing a header are merged. *)
val natural_loops : Spec_ir.Sir.func -> Dom.t -> loop list

(** Loop nesting depth of every block (0 = not in any loop). *)
val loop_depths : Spec_ir.Sir.func -> Dom.t -> int array

(** Check structural CFG invariants; raises [Failure] on violation. *)
val validate : Spec_ir.Sir.func -> unit
