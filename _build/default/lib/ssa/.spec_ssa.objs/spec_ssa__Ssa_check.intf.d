lib/ssa/ssa_check.mli: Spec_cfg Spec_ir
