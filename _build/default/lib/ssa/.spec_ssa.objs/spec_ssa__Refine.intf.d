lib/ssa/refine.mli: Hashtbl Spec_ir
