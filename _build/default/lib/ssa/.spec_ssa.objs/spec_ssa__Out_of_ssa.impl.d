lib/ssa/out_of_ssa.ml: List Option Sir Spec_ir Symtab Vec
