lib/ssa/refine.ml: Hashtbl List Loc Sir Spec_ir Symtab Types Vec
