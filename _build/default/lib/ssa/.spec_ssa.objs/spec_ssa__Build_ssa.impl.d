lib/ssa/build_ssa.ml: Array Dom Hashtbl List Sir Spec_cfg Spec_ir Symtab Vec
