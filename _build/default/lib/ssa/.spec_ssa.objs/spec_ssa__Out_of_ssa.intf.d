lib/ssa/out_of_ssa.mli: Spec_ir
