lib/ssa/ssa_check.ml: Array Dom Fmt Hashtbl List Sir Spec_cfg Spec_ir Symtab Vec
