(** Translation out of HSSA back to executable SIR by total de-versioning:
    every SSA version maps back to its original variable, and phi nodes
    and χ/μ annotations are dropped.  Sound because the optimizer's
    transformations preserve the single-location discipline (they only add
    fresh temporaries; see the .ml header for the argument). *)

val run_func : Spec_ir.Sir.prog -> Spec_ir.Sir.func -> unit
val run : Spec_ir.Sir.prog -> unit
