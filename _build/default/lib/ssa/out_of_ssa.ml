(** Translation out of HSSA back to executable SIR.

    The optimizer's transformations preserve the *single-location
    discipline*: every SSA version of a variable still denotes the value
    the underlying variable holds at that program point (PRE only adds
    fresh temporaries, saves/reloads of them, and check statements; it
    never replaces one variable's use by another variable).  De-versioning
    every variable back to its original and dropping phi nodes and χ/μ
    annotations is therefore a correct (and copy-free) out-of-SSA
    translation.  {!Ssa_check} plus differential execution in the test
    suite guard this invariant. *)

open Spec_ir

let deversion syms v = (Symtab.orig syms v).Symtab.vid

let run_func (prog : Sir.prog) (f : Sir.func) =
  let syms = prog.Sir.syms in
  let dv v = deversion syms v in
  let dv_expr e = Sir.map_expr_uses dv e in
  Vec.iter
    (fun (b : Sir.bb) ->
      b.Sir.phis <- [];
      b.Sir.stmts <-
        List.filter_map
          (fun (s : Sir.stmt) ->
            s.Sir.mus <- [];
            s.Sir.chis <- [];
            (match s.Sir.kind with
             | Sir.Stid (v, e) -> s.Sir.kind <- Sir.Stid (dv v, dv_expr e)
             | Sir.Istr (t, a, e, site) ->
               s.Sir.kind <- Sir.Istr (t, dv_expr a, dv_expr e, site)
             | Sir.Call c ->
               s.Sir.kind <-
                 Sir.Call
                   { c with
                     Sir.args = List.map dv_expr c.Sir.args;
                     Sir.ret = Option.map dv c.Sir.ret }
             | Sir.Snop -> ());
            match s.Sir.kind with
            | Sir.Snop -> None            (* drop annotation carriers *)
            | _ -> Some s)
          b.Sir.stmts;
      b.Sir.term <- Sir.map_term_exprs dv_expr b.Sir.term)
    f.Sir.fblocks

let run (prog : Sir.prog) = Sir.iter_funcs (run_func prog) prog
