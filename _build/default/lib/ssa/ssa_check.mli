(** SSA-form verification: single definitions, uses dominated by their
    definitions, phi operands available out of the matching predecessor.
    Raises [Failure] with a description on the first violation. *)

val check_func : Spec_ir.Sir.prog -> Spec_ir.Sir.func -> Spec_cfg.Dom.t -> unit
val check : Spec_ir.Sir.prog -> unit
