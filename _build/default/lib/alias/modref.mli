(** Interprocedural mod/ref summaries: per function, the alias classes and
    global variables it may modify or reference, transitively through
    calls (fixpoint over the call graph, so recursion is handled). *)

type summary = {
  mutable mod_classes : int list;
  mutable ref_classes : int list;
  mutable mod_vars : int list;
  mutable ref_vars : int list;
}

type t

(** Summary of a function (empty if never computed). *)
val get : t -> string -> summary

val compute : Spec_ir.Sir.prog -> Steensgaard.solution -> t

(** Is a variable visible inside [caller] (a global or one of the caller's
    own locals)? *)
val visible_in : Spec_ir.Sir.prog -> Spec_ir.Sir.func -> int -> bool
