(** Equivalence-class-based (Steensgaard) points-to analysis.

    This is the paper's stated baseline alias analysis (§3.2): a
    flow-insensitive, context-insensitive, unification-based analysis that
    partitions memory locations into equivalence classes.  Each class that
    is accessed indirectly receives a virtual variable in HSSA
    construction, and the class membership determines the initial χ/μ
    lists.

    Nodes represent sets of abstract locations: program variables and heap
    objects named by allocation site.  Each node carries a lazily created
    [pts] node: the class of locations its contents may point to.
    Assignments unify the relevant [pts] nodes; unification recursively
    joins the pointees, which is what makes the analysis near-linear. *)

open Spec_ir

type node = {
  id : int;
  mutable parent : int;          (* union-find *)
  mutable rank : int;
  mutable pts : int;             (* node id of pointee class, -1 if none *)
}

type t = {
  mutable nodes : node Vec.t;
  var_node : (int, int) Hashtbl.t;    (* variable id -> node id *)
  heap_node : (int, int) Hashtbl.t;   (* allocation site -> node id *)
  ret_node : (string, int) Hashtbl.t; (* function -> return-value node *)
  prog : Sir.prog;
}

let dummy_node = { id = -1; parent = -1; rank = 0; pts = -1 }

let new_node st =
  let id = Vec.length st.nodes in
  Vec.push st.nodes { id; parent = id; rank = 0; pts = -1 };
  id

let rec find st n =
  let node = Vec.get st.nodes n in
  if node.parent = n then n
  else begin
    let root = find st node.parent in
    node.parent <- root;
    root
  end

(** The pointee class of [n], created on demand. *)
let rec pts_of st n =
  let n = find st n in
  let node = Vec.get st.nodes n in
  if node.pts >= 0 then find st node.pts
  else begin
    let p = new_node st in
    node.pts <- p;
    p
  end

and unify st a b =
  let ra = find st a and rb = find st b in
  if ra <> rb then begin
    let na = Vec.get st.nodes ra and nb = Vec.get st.nodes rb in
    let parent, child =
      if na.rank >= nb.rank then na, nb else nb, na
    in
    if parent.rank = child.rank then parent.rank <- parent.rank + 1;
    child.parent <- parent.id;
    (* recursively join pointees *)
    match parent.pts >= 0, child.pts >= 0 with
    | true, true ->
      let p = parent.pts and c = child.pts in
      (* clear before the recursive join to keep termination obvious *)
      unify st p c
    | false, true -> parent.pts <- child.pts
    | true, false | false, false -> ()
  end

let var_node st vid =
  let vid = (Symtab.orig st.prog.Sir.syms vid).Symtab.vid in
  match Hashtbl.find_opt st.var_node vid with
  | Some n -> find st n
  | None ->
    let n = new_node st in
    Hashtbl.replace st.var_node vid n;
    n

let heap_node st site =
  match Hashtbl.find_opt st.heap_node site with
  | Some n -> find st n
  | None ->
    let n = new_node st in
    Hashtbl.replace st.heap_node site n;
    n

let ret_node st fname =
  match Hashtbl.find_opt st.ret_node fname with
  | Some n -> find st n
  | None ->
    let n = new_node st in
    Hashtbl.replace st.ret_node fname n;
    n

(** Node representing the set of locations the *value* of [e] may point
    to.  For an address expression this is the set of accessed
    locations. *)
let rec value_pts st (e : Sir.expr) : int =
  match e with
  | Sir.Const _ -> new_node st          (* points to nothing *)
  | Sir.Lda v -> var_node st v
  | Sir.Lod v -> pts_of st (var_node st v)
  | Sir.Ilod (_, a, _) -> pts_of st (value_pts st a)
  | Sir.Unop (_, _, x) -> value_pts st x
  | Sir.Binop (_, _, a, b) ->
    (* field-insensitive: pointer arithmetic stays within the object;
       for mixed operands, conservatively join both sides *)
    let na = value_pts st a and nb = value_pts st b in
    unify st na nb;
    find st na

let process_stmt st (s : Sir.stmt) =
  match s.Sir.kind with
  | Sir.Snop -> ()
  | Sir.Stid (v, e) ->
    unify st (pts_of st (var_node st v)) (value_pts st e)
  | Sir.Istr (_, a, e, _) ->
    unify st (pts_of st (value_pts st a)) (value_pts st e)
  | Sir.Call { callee = "malloc"; ret = Some r; csite; _ } ->
    unify st (pts_of st (var_node st r)) (heap_node st csite)
  | Sir.Call { callee; args; ret; _ } when not (Sir.is_builtin callee) ->
    let f = Sir.find_func st.prog callee in
    (try
       List.iter2
         (fun formal arg ->
           unify st (pts_of st (var_node st formal)) (value_pts st arg))
         f.Sir.fformals args
     with Invalid_argument _ -> ());
    (match ret with
     | Some r -> unify st (pts_of st (var_node st r)) (ret_node st callee)
     | None -> ())
  | Sir.Call _ -> ()   (* other builtins have no pointer effects *)

let process_term st fname (t : Sir.term) =
  match t with
  | Sir.Tret (Some e) -> unify st (ret_node st fname) (value_pts st e)
  | Sir.Tret None | Sir.Tgoto _ | Sir.Tcond _ -> ()

(* ------------------------------------------------------------------ *)
(* Solution                                                            *)
(* ------------------------------------------------------------------ *)

(** Solved points-to information, exposed as alias classes. *)
type solution = {
  st : t;
  site_class : (int, int) Hashtbl.t;
      (** indirect-reference site -> class id (node root) *)
  class_vars : (int, int list) Hashtbl.t;
      (** class id -> memory-resident variable members *)
  class_heap : (int, int list) Hashtbl.t;
      (** class id -> heap allocation-site members *)
}

let solve (prog : Sir.prog) : solution =
  let st =
    { nodes = Vec.create dummy_node; var_node = Hashtbl.create 64;
      heap_node = Hashtbl.create 16; ret_node = Hashtbl.create 16; prog }
  in
  Sir.iter_funcs
    (fun f ->
      Vec.iter
        (fun (b : Sir.bb) ->
          List.iter (process_stmt st) b.Sir.stmts;
          process_term st f.Sir.fname b.Sir.term)
        f.Sir.fblocks)
    prog;
  (* classify indirect-reference sites by the class their address accesses *)
  let site_class = Hashtbl.create 64 in
  let classify_expr e =
    Sir.iter_subexprs
      (function
        | Sir.Ilod (_, a, site) ->
          Hashtbl.replace site_class site (find st (value_pts st a))
        | _ -> ())
      e
  in
  Sir.iter_funcs
    (fun f ->
      Vec.iter
        (fun (b : Sir.bb) ->
          List.iter
            (fun s ->
              List.iter classify_expr (Sir.stmt_exprs s.Sir.kind);
              match s.Sir.kind with
              | Sir.Istr (_, a, _, site) ->
                Hashtbl.replace site_class site (find st (value_pts st a))
              | _ -> ())
            b.Sir.stmts;
          List.iter classify_expr (Sir.term_exprs b.Sir.term))
        f.Sir.fblocks)
    prog;
  (* class membership *)
  let class_vars = Hashtbl.create 16 and class_heap = Hashtbl.create 16 in
  Hashtbl.iter
    (fun vid n ->
      if Symtab.is_mem prog.Sir.syms vid then begin
        let c = find st n in
        let cur =
          match Hashtbl.find_opt class_vars c with Some l -> l | None -> []
        in
        Hashtbl.replace class_vars c (vid :: cur)
      end)
    st.var_node;
  Hashtbl.iter
    (fun site n ->
      let c = find st n in
      let cur =
        match Hashtbl.find_opt class_heap c with Some l -> l | None -> []
      in
      Hashtbl.replace class_heap c (site :: cur))
    st.heap_node;
  { st; site_class; class_vars; class_heap }

(** Alias class accessed by an indirect-reference site. *)
let class_of_site sol site =
  match Hashtbl.find_opt sol.site_class site with
  | Some c -> Some (find sol.st c)
  | None -> None

(** Memory-resident variables that may live in class [c], sorted. *)
let vars_in_class sol c =
  match Hashtbl.find_opt sol.class_vars (find sol.st c) with
  | Some l -> List.sort_uniq compare l
  | None -> []

let heap_sites_in_class sol c =
  match Hashtbl.find_opt sol.class_heap (find sol.st c) with
  | Some l -> List.sort_uniq compare l
  | None -> []

(** Class containing memory-resident variable [vid], if any pointer may
    reach it. *)
let class_of_var sol vid =
  match Hashtbl.find_opt sol.st.var_node
          (Symtab.orig sol.st.prog.Sir.syms vid).Symtab.vid with
  | Some n -> Some (find sol.st n)
  | None -> None

(** May two indirect sites alias (same class)? *)
let sites_may_alias sol s1 s2 =
  match class_of_site sol s1, class_of_site sol s2 with
  | Some a, Some b -> a = b
  | _ -> false

(** All classes accessed by at least one indirect site. *)
let accessed_classes sol =
  Hashtbl.fold (fun _ c acc -> find sol.st c :: acc) sol.site_class []
  |> List.sort_uniq compare
