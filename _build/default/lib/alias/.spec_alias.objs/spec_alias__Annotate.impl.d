lib/alias/annotate.ml: Hashtbl List Loc Modref Printf Sir Spec_ir Steensgaard Symtab Types Vec
