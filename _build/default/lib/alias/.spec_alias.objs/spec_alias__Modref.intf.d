lib/alias/modref.mli: Spec_ir Steensgaard
