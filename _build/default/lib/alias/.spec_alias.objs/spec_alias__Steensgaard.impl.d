lib/alias/steensgaard.ml: Hashtbl List Sir Spec_ir Symtab Vec
