lib/alias/steensgaard.mli: Spec_ir
