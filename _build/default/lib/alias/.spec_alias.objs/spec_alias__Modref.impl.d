lib/alias/modref.ml: Hashtbl List Sir Spec_ir Steensgaard Symtab Vec
