(** Equivalence-class-based (Steensgaard) points-to analysis — the
    paper's baseline alias analysis (§3.2).

    Unification-based, flow- and context-insensitive: memory locations are
    partitioned into classes; every indirect-reference site is associated
    with the class its address may point into.  Classes feed the HSSA
    virtual variables and the initial χ/μ lists. *)

type solution

(** Solve the whole program in (near-)linear time. *)
val solve : Spec_ir.Sir.prog -> solution

(** Alias class accessed by an indirect-reference site, if the site was
    seen by the analysis. *)
val class_of_site : solution -> int -> int option

(** Memory-resident variables that may live in a class, sorted by id. *)
val vars_in_class : solution -> int -> int list

(** Heap allocation sites that may live in a class, sorted. *)
val heap_sites_in_class : solution -> int -> int list

(** Class containing a memory-resident variable, when any pointer may
    reach it. *)
val class_of_var : solution -> int -> int option

(** May two indirect sites access the same class? *)
val sites_may_alias : solution -> int -> int -> bool

(** All classes accessed by at least one indirect site, sorted. *)
val accessed_classes : solution -> int list
