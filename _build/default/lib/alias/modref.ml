(** Interprocedural mod/ref summaries.

    For each function, the set of alias classes and global variables it may
    modify or reference, transitively through calls.  Call statements get
    their χ/μ lists from the callee's summary, which keeps call-killed
    value numbers precise enough for PRE across calls (the paper's rule 3
    then decides how speculative optimization treats them). *)

open Spec_ir

type summary = {
  mutable mod_classes : int list;
  mutable ref_classes : int list;
  mutable mod_vars : int list;    (* directly stored memory-resident vars *)
  mutable ref_vars : int list;
}

type t = (string, summary) Hashtbl.t

let get (t : t) fname : summary =
  match Hashtbl.find_opt t fname with
  | Some s -> s
  | None ->
    let s = { mod_classes = []; ref_classes = []; mod_vars = []; ref_vars = [] } in
    Hashtbl.replace t fname s;
    s

let add_uniq x l = if List.mem x l then l else x :: l

let compute (prog : Sir.prog) (sol : Steensgaard.solution) : t =
  let t : t = Hashtbl.create 16 in
  let changed = ref true in
  (* local effects + transitive closure over the call graph, iterated to a
     fixpoint (handles recursion) *)
  while !changed do
    changed := false;
    Sir.iter_funcs
      (fun f ->
        let s = get t f.Sir.fname in
        let grow setter getter v =
          let cur = getter s in
          if not (List.mem v cur) then begin
            setter s (add_uniq v cur);
            changed := true
          end
        in
        let add_mod_class c =
          grow (fun s v -> s.mod_classes <- v) (fun s -> s.mod_classes) c in
        let add_ref_class c =
          grow (fun s v -> s.ref_classes <- v) (fun s -> s.ref_classes) c in
        let add_mod_var v =
          grow (fun s v -> s.mod_vars <- v) (fun s -> s.mod_vars) v in
        let add_ref_var v =
          grow (fun s v -> s.ref_vars <- v) (fun s -> s.ref_vars) v in
        let scan_expr e =
          Sir.iter_subexprs
            (function
              | Sir.Ilod (_, _, site) ->
                (match Steensgaard.class_of_site sol site with
                 | Some c -> add_ref_class c
                 | None -> ())
              | Sir.Lod v when Symtab.is_mem prog.Sir.syms v -> add_ref_var v
              | _ -> ())
            e
        in
        Vec.iter
          (fun (b : Sir.bb) ->
            List.iter
              (fun st ->
                List.iter scan_expr (Sir.stmt_exprs st.Sir.kind);
                match st.Sir.kind with
                | Sir.Istr (_, _, _, site) ->
                  (match Steensgaard.class_of_site sol site with
                   | Some c -> add_mod_class c
                   | None -> ())
                | Sir.Stid (v, _) when Symtab.is_mem prog.Sir.syms v ->
                  add_mod_var v
                | Sir.Call { callee; _ } when not (Sir.is_builtin callee) ->
                  let cs = get t callee in
                  List.iter add_mod_class cs.mod_classes;
                  List.iter add_ref_class cs.ref_classes;
                  List.iter add_mod_var cs.mod_vars;
                  List.iter add_ref_var cs.ref_vars
                | _ -> ())
              b.Sir.stmts;
            List.iter scan_expr (Sir.term_exprs b.Sir.term))
          f.Sir.fblocks)
      prog
  done;
  t

(** Variables of interest at a call inside [caller]: globals plus the
    caller's own memory-resident locals (other functions' dead locals are
    invisible to the caller's SSA). *)
let visible_in prog (caller : Sir.func) vid =
  let v = Symtab.var prog.Sir.syms vid in
  match v.Symtab.vfunc with
  | None -> true
  | Some f -> f = caller.Sir.fname
