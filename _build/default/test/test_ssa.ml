(* Tests for HSSA construction, verification, and out-of-SSA. *)

open Spec_ir
open Spec_cfg
open Spec_alias
open Spec_ssa

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* frontend -> chi/mu annotate -> split critical edges -> SSA *)
let build src =
  let p = Lower.compile src in
  let info = Annotate.run p in
  Sir.iter_funcs (fun f -> ignore (Cfg_utils.split_critical_edges f)) p;
  let ts = Build_ssa.build p in
  p, info, ts

let test_straightline_versions () =
  let p, _, _ = build "int main(){ int x; x = 1; x = 2; return x; }" in
  Ssa_check.check p;
  let f = Sir.find_func p "main" in
  let entry = Sir.block f 0 in
  (match entry.Sir.stmts with
   | [ { Sir.kind = Sir.Stid (v1, _); _ }; { Sir.kind = Sir.Stid (v2, _); _ } ] ->
     check_bool "two distinct versions" true (v1 <> v2);
     check_int "versions share original" (Symtab.orig p.Sir.syms v1).Symtab.vid
       (Symtab.orig p.Sir.syms v2).Symtab.vid;
     (match entry.Sir.term with
      | Sir.Tret (Some (Sir.Lod u)) -> check_int "return uses v2" v2 u
      | _ -> Alcotest.fail "expected Lod return")
   | _ -> Alcotest.fail "unexpected statements")

let test_phi_at_join () =
  let p, _, _ =
    build "int main(){ int x; if (1) x = 1; else x = 2; return x; }"
  in
  Ssa_check.check p;
  let f = Sir.find_func p "main" in
  let joins =
    Vec.fold
      (fun acc (b : Sir.bb) ->
        acc + List.length (List.filter (fun (ph : Sir.phi) ->
            Symtab.name p.Sir.syms
              (Symtab.orig p.Sir.syms ph.Sir.phi_var).Symtab.vid |> fun _ -> true)
            b.Sir.phis))
      0 f.Sir.fblocks
  in
  check_bool "at least one phi" true (joins >= 1)

let test_loop_phi () =
  let p, _, _ =
    build
      "int main(){ int s; int i; s = 0; i = 0; \
       while (i < 9) { s = s + i; i = i + 1; } return s; }"
  in
  Ssa_check.check p;
  let f = Sir.find_func p "main" in
  (* the loop head must carry phis for s and i *)
  let head_phis =
    Vec.fold
      (fun acc (b : Sir.bb) ->
        if List.length b.Sir.preds >= 2 then acc + List.length b.Sir.phis
        else acc)
      0 f.Sir.fblocks
  in
  check_bool "loop head has phis" true (head_phis >= 2)

let test_chi_renamed () =
  let p, _, _ =
    build
      "int g; int h; \
       int main(){ int* p; if (g) p = &g; else p = &h; \
       *p = 3; return g; }"
  in
  Ssa_check.check p;
  let f = Sir.find_func p "main" in
  let istore =
    let found = ref None in
    Vec.iter
      (fun (b : Sir.bb) ->
        List.iter
          (fun s -> match s.Sir.kind with
             | Sir.Istr _ -> found := Some s
             | _ -> ())
          b.Sir.stmts)
      f.Sir.fblocks;
    Option.get !found
  in
  List.iter
    (fun (c : Sir.chi) ->
      check_bool "chi lhs is a version" true
        ((Symtab.var p.Sir.syms c.Sir.chi_lhs).Symtab.vver > 0);
      check_bool "chi lhs/rhs differ" true (c.Sir.chi_lhs <> c.Sir.chi_rhs))
    istore.Sir.chis;
  check_bool "istore has chis" true (istore.Sir.chis <> [])

let test_mu_renamed_to_chi_version () =
  (* the load *p after the store *p must use the chi-defined version *)
  let p, _, _ =
    build
      "int g; int main(){ int* p; p = &g; *p = 3; return *p; }"
  in
  Ssa_check.check p;
  let f = Sir.find_func p "main" in
  let istore_chis = ref [] and load_mus = ref [] in
  Vec.iter
    (fun (b : Sir.bb) ->
      List.iter
        (fun s ->
          match s.Sir.kind with
          | Sir.Istr _ -> istore_chis := s.Sir.chis
          | Sir.Snop when s.Sir.mus <> [] -> load_mus := s.Sir.mus
          | _ -> ())
        b.Sir.stmts)
    f.Sir.fblocks;
  check_bool "store has chis" true (!istore_chis <> []);
  check_bool "load has mus" true (!load_mus <> []);
  (* every mu operand matching a chi'd variable uses that chi's lhs *)
  List.iter
    (fun (m : Sir.mu) ->
      match
        List.find_opt (fun (c : Sir.chi) -> c.Sir.chi_var = m.Sir.mu_var)
          !istore_chis
      with
      | Some c -> check_int "mu uses chi-defined version" c.Sir.chi_lhs m.Sir.mu_opnd
      | None -> ())
    !load_mus

let test_ssa_check_catches_violation () =
  let p, _, _ = build "int main(){ int x; x = 1; x = 2; return x; }" in
  let f = Sir.find_func p "main" in
  let entry = Sir.block f 0 in
  (* corrupt: make the return use a version defined later than... swap defs *)
  (match entry.Sir.stmts with
   | [ s1; s2 ] ->
     entry.Sir.stmts <- [ s2; s1 ];
     (match s2.Sir.kind, entry.Sir.term with
      | Sir.Stid (_, _), Sir.Tret (Some (Sir.Lod _)) ->
        (* the return now uses s2's def which is fine; instead corrupt by
           making s1 use s1's own target *)
        (match s1.Sir.kind with
         | Sir.Stid (v, _) -> s1.Sir.kind <- Sir.Stid (v, Sir.Lod v)
         | _ -> ())
      | _ -> ())
   | _ -> ());
  (try
     Ssa_check.check p;
     Alcotest.fail "expected SSA violation"
   with Failure _ -> ())

(* Round trip: optimizing pipeline with no optimization must preserve
   semantics exactly. *)
let roundtrip_src src =
  let baseline = Spec_prof.Interp.run (Lower.compile src) in
  let p, _, _ = build src in
  Ssa_check.check p;
  Out_of_ssa.run p;
  let after = Spec_prof.Interp.run p in
  check_str "output preserved" baseline.Spec_prof.Interp.output
    after.Spec_prof.Interp.output;
  check_bool "return preserved" true
    (baseline.Spec_prof.Interp.ret = after.Spec_prof.Interp.ret)

let test_roundtrip_simple () =
  roundtrip_src
    "int main(){ int s; s = 0; for (int i = 0; i < 10; i++) s += i; \
     print_int(s); return s; }"

let test_roundtrip_pointers () =
  roundtrip_src
    "int a[16]; int b[16]; \
     int main(){ int* p; int s; s = 0; \
     for (int i = 0; i < 16; i++) { a[i] = i; b[i] = 2 * i; } \
     for (int i = 0; i < 16; i++) { \
       if (i % 3 == 0) p = &a[i]; else p = &b[i]; \
       s += *p; } \
     print_int(s); return s; }"

let test_roundtrip_calls () =
  roundtrip_src
    "int g; \
     int twice(int x){ return 2 * x; } \
     void bump(){ g = g + 1; } \
     int main(){ int s; s = 0; \
     for (int i = 0; i < 5; i++) { s += twice(i); bump(); } \
     print_int(s); print_int(g); return 0; }"

let test_roundtrip_heap () =
  roundtrip_src
    "int main(){ int* p; int n; n = 32; p = (int*)malloc(256); \
     for (int i = 0; i < n; i++) p[i] = i * i; \
     int s; s = 0; for (int i = 0; i < n; i++) s += p[i]; \
     print_int(s); return 0; }"

let test_roundtrip_floats () =
  roundtrip_src
    "float acc; \
     int main(){ float x; x = 0.5; acc = 0.0; \
     for (int i = 0; i < 20; i++) { acc = acc + x; x = x * 1.5; } \
     print_flt(acc); return 0; }"

(* qcheck: random structured programs round-trip through SSA. *)
let random_prog_gen : string QCheck.Gen.t =
  QCheck.Gen.(
    let int_expr vars =
      oneof
        [ map string_of_int (int_range 0 9);
          (if vars = [] then return "3" else map Fun.id (oneofl vars)) ]
    in
    let* nv = int_range 1 3 in
    let vars = List.init nv (fun i -> Printf.sprintf "x%d" i) in
    let* stmts = list_size (int_range 1 8)
        (oneof
           [ (let* v = oneofl vars in
              let* a = int_expr vars in
              let* b = int_expr vars in
              let* op = oneofl [ "+"; "-"; "*" ] in
              return (Printf.sprintf "%s = %s %s %s;" v a op b));
             (let* v = oneofl vars in
              let* a = int_expr vars in
              let* c = int_expr vars in
              return
                (Printf.sprintf "if (%s > 2) { %s = %s; } else { %s = %s + 1; }"
                   c v a v a));
             (let* v = oneofl vars in
              let* a = int_expr vars in
              return
                (Printf.sprintf
                   "for (int k = 0; k < 3; k++) { %s = %s + k; }" v a)) ])
    in
    let decls =
      String.concat " " (List.map (fun v -> Printf.sprintf "int %s; %s = 1;" v v) vars)
    in
    let prints =
      String.concat " " (List.map (fun v -> Printf.sprintf "print_int(%s);" v) vars)
    in
    return
      (Printf.sprintf "int main(){ %s %s %s return 0; }" decls
         (String.concat " " stmts) prints))

let prop_random_roundtrip =
  QCheck.Test.make ~count:100 ~name:"random programs round-trip through SSA"
    (QCheck.make ~print:Fun.id random_prog_gen)
    (fun src ->
      let baseline = Spec_prof.Interp.run (Lower.compile src) in
      let p, _, _ = build src in
      Ssa_check.check p;
      Out_of_ssa.run p;
      let after = Spec_prof.Interp.run p in
      baseline.Spec_prof.Interp.output = after.Spec_prof.Interp.output)

let suite =
  [ Alcotest.test_case "straightline versions" `Quick test_straightline_versions;
    Alcotest.test_case "phi at join" `Quick test_phi_at_join;
    Alcotest.test_case "loop phi" `Quick test_loop_phi;
    Alcotest.test_case "chi renamed" `Quick test_chi_renamed;
    Alcotest.test_case "mu uses chi version" `Quick test_mu_renamed_to_chi_version;
    Alcotest.test_case "ssa check catches violation" `Quick test_ssa_check_catches_violation;
    Alcotest.test_case "roundtrip simple" `Quick test_roundtrip_simple;
    Alcotest.test_case "roundtrip pointers" `Quick test_roundtrip_pointers;
    Alcotest.test_case "roundtrip calls" `Quick test_roundtrip_calls;
    Alcotest.test_case "roundtrip heap" `Quick test_roundtrip_heap;
    Alcotest.test_case "roundtrip floats" `Quick test_roundtrip_floats;
    QCheck_alcotest.to_alcotest prop_random_roundtrip ]
