(* Tests for the SPEC2000-like workload kernels and the experiment
   harness: every kernel must compile, run deterministically, and keep
   identical observable behaviour under every pipeline variant (the
   harness asserts this internally). *)

open Spec_ir
open Spec_driver
open Spec_workloads

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let test_all_compile_and_run () =
  List.iter
    (fun w ->
      let p = Lower.compile (Workloads.train_source w) in
      let r = Spec_prof.Interp.run p in
      check_bool
        (w.Workloads.name ^ " produces output")
        true
        (String.length r.Spec_prof.Interp.output > 0))
    Workloads.all

let test_deterministic () =
  List.iter
    (fun w ->
      let out () =
        (Spec_prof.Interp.run (Lower.compile (Workloads.train_source w)))
          .Spec_prof.Interp.output
      in
      check_str (w.Workloads.name ^ " deterministic") (out ()) (out ()))
    Workloads.all

let test_train_ref_differ () =
  List.iter
    (fun w ->
      let t =
        (Spec_prof.Interp.run (Lower.compile (Workloads.train_source w)))
          .Spec_prof.Interp.output
      in
      let r =
        (Spec_prof.Interp.run (Lower.compile (Workloads.ref_source w)))
          .Spec_prof.Interp.output
      in
      check_bool (w.Workloads.name ^ " ref input differs from train") true
        (t <> r))
    Workloads.all

(* sites must line up between the train and ref compiles, or profiles
   collected on train would be meaningless for ref *)
let test_site_stability () =
  List.iter
    (fun w ->
      let pt = Lower.compile (Workloads.train_source w) in
      let pr = Lower.compile (Workloads.ref_source w) in
      check_int
        (w.Workloads.name ^ " same number of sites")
        pt.Sir.next_site pr.Sir.next_site;
      Hashtbl.iter
        (fun sid (si : Sir.site_info) ->
          match Sir.site_info pr sid with
          | Some si' ->
            check_bool "site kinds match" true
              (si.Sir.si_kind = si'.Sir.si_kind
               && si.Sir.si_func = si'.Sir.si_func)
          | None -> Alcotest.fail "missing site in ref compile")
        pt.Sir.sites)
    Workloads.all

(* the harness runs every variant and asserts identical output; run it in
   quick mode for three representative kernels *)
let test_experiment_harness_quick () =
  List.iter
    (fun name ->
      let b = Experiments.run_workload ~quick:true (Workloads.find name) in
      check_bool (name ^ " produced spec stats") true
        (b.Experiments.prof_spec.Experiments.r_stats.Spec_ssapre.Ssapre.items
         > 0))
    [ "equake"; "mcf"; "gzip" ]

let test_equake_shape () =
  (* §5.1: a large fraction of smvp's loads become checks, speedup is
     positive but below the no-check upper bound *)
  let b = Experiments.run_workload ~quick:true (Workloads.find "equake") in
  let s = Experiments.smvp_case_study b in
  check_bool "checks between 20% and 60%" true
    (s.Experiments.checks_pct > 20. && s.Experiments.checks_pct < 60.);
  check_bool "speculative speedup positive" true
    (s.Experiments.spec_speedup > 0.);
  check_bool "upper bound above speculative" true
    (s.Experiments.tuned_speedup > s.Experiments.spec_speedup)

let test_gzip_misspeculates_on_ref () =
  (* the ref input exhibits aliasing the train profile never saw: checks
     must miss at runtime and the program must still be correct (the
     harness asserts output equality internally) *)
  let b = Experiments.run_workload (Workloads.find "gzip") in
  let p = b.Experiments.prof_spec.Experiments.r_machine.Spec_machine.Machine.perf in
  check_bool "gzip has (few) checks" true (p.Spec_machine.Machine.checks > 0);
  check_bool "gzip mis-speculates on ref" true
    (p.Spec_machine.Machine.check_misses > 0);
  let ratio =
    float_of_int p.Spec_machine.Machine.check_misses
    /. float_of_int p.Spec_machine.Machine.checks
  in
  check_bool "mis-speculation ratio in the paper's ballpark (1..15%)" true
    (ratio > 0.01 && ratio < 0.15)

let test_no_misspec_on_train () =
  (* measuring on the same input as profiled: speculation is never wrong *)
  let b = Experiments.run_workload ~quick:true (Workloads.find "gzip") in
  let p = b.Experiments.prof_spec.Experiments.r_machine.Spec_machine.Machine.perf in
  check_int "no misses when input matches profile" 0
    p.Spec_machine.Machine.check_misses

let test_alat_ablation_monotone () =
  let rows =
    Experiments.ablate_alat ~quick:true (Workloads.find "equake")
      [ 4; 32 ]
  in
  match rows with
  | [ (_, _, misses_small); (_, _, misses_big) ] ->
    check_bool "smaller ALAT misses at least as much" true
      (misses_small >= misses_big)
  | _ -> Alcotest.fail "expected two rows"

let test_fig12_potential_bounds_achieved () =
  List.iter
    (fun name ->
      let b = Experiments.run_workload ~quick:true (Workloads.find name) in
      let achieved =
        Experiments.load_reduction ~base:b.Experiments.base
          ~spec:b.Experiments.prof_spec
      in
      let aggressive =
        Experiments.load_reduction ~base:b.Experiments.base
          ~spec:b.Experiments.aggressive
      in
      check_bool (name ^ ": aggressive >= achieved") true
        (aggressive >= achieved -. 0.2))
    [ "equake"; "art"; "twolf" ]

let suite =
  [ Alcotest.test_case "all compile and run" `Quick test_all_compile_and_run;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "train/ref differ" `Quick test_train_ref_differ;
    Alcotest.test_case "site stability" `Quick test_site_stability;
    Alcotest.test_case "experiment harness" `Slow test_experiment_harness_quick;
    Alcotest.test_case "equake shape" `Slow test_equake_shape;
    Alcotest.test_case "gzip misspec on ref" `Slow test_gzip_misspeculates_on_ref;
    Alcotest.test_case "no misspec on train" `Slow test_no_misspec_on_train;
    Alcotest.test_case "ALAT ablation monotone" `Slow test_alat_ablation_monotone;
    Alcotest.test_case "fig12 bounds" `Slow test_fig12_potential_bounds_achieved ]
