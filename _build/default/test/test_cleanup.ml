(* Tests for the scalar cleanup passes: constant folding, block-local
   copy/constant propagation, liveness DCE. *)

open Spec_ir
open Spec_driver

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let run_cleanup src =
  let p = Lower.compile src in
  let st = Spec_ssapre.Cleanup.run p in
  p, st

let interp p = Spec_prof.Interp.run p

let count_stmts (p : Sir.prog) =
  let n = ref 0 in
  Sir.iter_funcs
    (fun f ->
      Vec.iter
        (fun (b : Sir.bb) -> n := !n + List.length b.Sir.stmts)
        f.Sir.fblocks)
    p;
  !n

let test_constant_folding () =
  let p, st = run_cleanup "int main(){ int x; x = 2 + 3 * 4; return x; }" in
  check_bool "folded" true (st.Spec_ssapre.Cleanup.folded >= 1);
  (match (interp p).Spec_prof.Interp.ret with
   | Spec_prof.Interp.Vint 14 -> ()
   | _ -> Alcotest.fail "wrong folded value")

let test_identities () =
  let src =
    "int main(){ int x; x = rnd(10); int y; y = x + 0; \
     int z; z = 1 * y; return z - 0; }"
  in
  let baseline = interp (Lower.compile src) in
  let p, st = run_cleanup src in
  check_bool "identities folded" true (st.Spec_ssapre.Cleanup.folded >= 3);
  check_bool "semantics kept" true
    (baseline.Spec_prof.Interp.ret = (interp p).Spec_prof.Interp.ret)

let test_copy_propagation_and_dce () =
  let src =
    "int main(){ int a; a = rnd(100); int b; b = a; int c; c = b; \
     int dead; dead = a * 3 + 7; \
     print_int(c); return 0; }"
  in
  let baseline = interp (Lower.compile src) in
  let p, st = run_cleanup src in
  check_bool "copies propagated" true (st.Spec_ssapre.Cleanup.propagated >= 2);
  check_bool "dead code removed" true (st.Spec_ssapre.Cleanup.removed >= 1);
  check_str "output kept" baseline.Spec_prof.Interp.output
    (interp p).Spec_prof.Interp.output

let test_dce_keeps_faulting_rhs () =
  (* a dead assignment whose RHS loads memory must be kept: deleting it
     would change load counters (and could suppress a fault) *)
  let src =
    "int g; int main(){ int dead; dead = g + 1; print_int(7); return 0; }"
  in
  let p, _ = run_cleanup src in
  let loads = (interp p).Spec_prof.Interp.counters.Spec_prof.Interp.mem_loads in
  check_int "load kept" 1 loads

let test_dce_keeps_stores_and_calls () =
  let src =
    "int g; \
     void bump(){ g = g + 1; } \
     int main(){ int unused; unused = 3; bump(); g = g + 2; \
     print_int(g); return 0; }"
  in
  let baseline = interp (Lower.compile src) in
  let p, _ = run_cleanup src in
  check_str "effects kept" baseline.Spec_prof.Interp.output
    (interp p).Spec_prof.Interp.output

let test_reassociation_shortens_addresses () =
  let src =
    (* (x + 2) + 3 reassociates to x + 5 *)
    "int main(){ int x; x = rnd(9); return (x + 2) + 3; }"
  in
  let baseline = interp (Lower.compile src) in
  let p, st = run_cleanup src in
  check_bool "reassociated" true (st.Spec_ssapre.Cleanup.folded >= 1);
  check_bool "semantics kept" true
    (baseline.Spec_prof.Interp.ret = (interp p).Spec_prof.Interp.ret)

let test_cleanup_in_pipeline_shrinks_code () =
  let src =
    "int a[32]; int main(){ int s; s = 0; \
     for (int i = 0; i < 32; i = i + 1) { s = s + a[i]; } \
     print_int(s); return 0; }"
  in
  let noopt = Pipeline.compile_and_optimize src Pipeline.Noopt in
  let opt = Pipeline.compile_and_optimize src Pipeline.Base in
  check_str "pipeline output intact"
    (interp noopt.Pipeline.prog).Spec_prof.Interp.output
    (interp opt.Pipeline.prog).Spec_prof.Interp.output;
  (* after SR + LFTR + cleanup the loop should not be larger than the
     unoptimized version *)
  check_bool "no code explosion" true
    (count_stmts opt.Pipeline.prog <= count_stmts noopt.Pipeline.prog + 4)

let prop_cleanup_random =
  QCheck.Test.make ~count:80 ~name:"cleanup preserves semantics"
    (QCheck.make ~print:Fun.id
       QCheck.Gen.(
         let* seed = int_range 1 1000 in
         let* c1 = int_range 0 9 in
         let* c2 = int_range 1 9 in
         let* use_dead = bool in
         return
           (Printf.sprintf
              "int a[8]; int main(){ seed(%d); int x; x = rnd(50); \
               int y; y = x; int z; z = y + %d; %s \
               for (int i = 0; i < 6; i = i + 1) a[i] = z * %d + i * 0; \
               int s; s = 0; for (int i = 0; i < 8; i++) s += a[i]; \
               print_int(s + z * 1); return 0; }"
              seed c1
              (if use_dead then "int d; d = x * 99 + 1;" else "")
              c2)))
    (fun src ->
      let baseline = interp (Lower.compile src) in
      let p, _ = run_cleanup src in
      baseline.Spec_prof.Interp.output = (interp p).Spec_prof.Interp.output)

let suite =
  [ Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "identities" `Quick test_identities;
    Alcotest.test_case "copy prop + dce" `Quick test_copy_propagation_and_dce;
    Alcotest.test_case "dce keeps loads" `Quick test_dce_keeps_faulting_rhs;
    Alcotest.test_case "dce keeps effects" `Quick test_dce_keeps_stores_and_calls;
    Alcotest.test_case "reassociation" `Quick test_reassociation_shortens_addresses;
    Alcotest.test_case "pipeline shrinks code" `Quick test_cleanup_in_pipeline_shrinks_code;
    QCheck_alcotest.to_alcotest prop_cleanup_random ]
