(* Tests for dominators, dominance frontiers, loops, edge splitting. *)

open Spec_ir
open Spec_cfg

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Build a bare CFG function from an adjacency description:
   [succs.(i)] lists the successors of block i (at most 2). *)
let mk_cfg (succs : int list array) : Sir.prog * Sir.func =
  let p = Sir.create_prog () in
  let f = Sir.create_func p ~name:"t" ~ret:Types.Tint ~formals:[] in
  for _ = 1 to Array.length succs - 1 do
    ignore (Sir.new_bb f : Sir.bb)
  done;
  Array.iteri
    (fun i ss ->
      let b = Sir.block f i in
      b.Sir.term <-
        (match ss with
         | [] -> Sir.Tret (Some (Sir.Const (Sir.Cint 0)))
         | [ s ] -> Sir.Tgoto s
         | [ t; e ] -> Sir.Tcond (Sir.Const (Sir.Cint 1), t, e)
         | _ -> invalid_arg "mk_cfg: at most two successors"))
    succs;
  Sir.recompute_preds f;
  (p, f)

(* Naive quadratic dominance: dataflow Dom(b) = {b} U inter preds. *)
let naive_dominators (f : Sir.func) : bool array array =
  let n = Sir.n_blocks f in
  let dom = Array.init n (fun _ -> Array.make n true) in
  dom.(Sir.entry_bid) <- Array.init n (fun i -> i = Sir.entry_bid);
  (* unreachable blocks handled by keeping "all" until proven otherwise *)
  let changed = ref true in
  while !changed do
    changed := false;
    for b = 0 to n - 1 do
      if b <> Sir.entry_bid then begin
        let preds = (Sir.block f b).Sir.preds in
        if preds <> [] then begin
          let inter = Array.make n true in
          List.iter
            (fun p -> for i = 0 to n - 1 do
                inter.(i) <- inter.(i) && dom.(p).(i) done)
            preds;
          inter.(b) <- true;
          if inter <> dom.(b) then begin dom.(b) <- inter; changed := true end
        end
      end
    done
  done;
  dom

(* The diamond:      0
                    / \
                   1   2
                    \ /
                     3        *)
let test_diamond () =
  let _, f = mk_cfg [| [ 1; 2 ]; [ 3 ]; [ 3 ]; [] |] in
  let d = Dom.compute f in
  check_int "idom 1" 0 (Dom.idom d 1);
  check_int "idom 2" 0 (Dom.idom d 2);
  check_int "idom 3" 0 (Dom.idom d 3);
  check_bool "0 dom 3" true (Dom.dominates d 0 3);
  check_bool "1 !dom 3" false (Dom.dominates d 1 3);
  Alcotest.(check (list int)) "df 1" [ 3 ] (Dom.dominance_frontier d 1);
  Alcotest.(check (list int)) "df 2" [ 3 ] (Dom.dominance_frontier d 2);
  Alcotest.(check (list int)) "df 0" [] (Dom.dominance_frontier d 0)

(* A loop:  0 -> 1 ; 1 -> 2|4 ; 2 -> 3 ; 3 -> 1 ; 4 ret *)
let test_loop_dom () =
  let _, f = mk_cfg [| [ 1 ]; [ 2; 4 ]; [ 3 ]; [ 1 ]; [] |] in
  let d = Dom.compute f in
  check_int "idom 4" 1 (Dom.idom d 4);
  check_int "idom 3" 2 (Dom.idom d 3);
  Alcotest.(check (list int)) "df of back-edge source" [ 1 ]
    (Dom.dominance_frontier d 3);
  let loops = Cfg_utils.natural_loops f d in
  check_int "one loop" 1 (List.length loops);
  let l = List.hd loops in
  check_int "loop header" 1 l.Cfg_utils.header;
  Alcotest.(check (list int)) "loop body" [ 1; 2; 3 ]
    (List.sort compare l.Cfg_utils.body)

let test_nested_loops () =
  (* 0 -> 1; 1 -> 2|5; 2 -> 3|4; 3 -> 2; 4 -> 1; 5 ret *)
  let _, f = mk_cfg [| [ 1 ]; [ 2; 5 ]; [ 3; 4 ]; [ 2 ]; [ 1 ]; [] |] in
  let d = Dom.compute f in
  let loops = Cfg_utils.natural_loops f d in
  check_int "two loops" 2 (List.length loops);
  let depths = Cfg_utils.loop_depths f d in
  check_int "inner block depth" 2 depths.(3);
  check_int "outer block depth" 1 depths.(4);
  check_int "exit depth" 0 depths.(5)

let test_df_plus () =
  let _, f = mk_cfg [| [ 1; 2 ]; [ 3 ]; [ 3 ]; [] |] in
  let d = Dom.compute f in
  Alcotest.(check (list int)) "df+ {1}" [ 3 ] (Dom.df_plus d [ 1 ]);
  Alcotest.(check (list int)) "df+ {1;2}" [ 3 ] (Dom.df_plus d [ 1; 2 ])

let test_preorder_covers_all () =
  let _, f = mk_cfg [| [ 1; 2 ]; [ 3 ]; [ 3 ]; [ 4 ]; [] |] in
  let d = Dom.compute f in
  let pre = Dom.preorder d in
  check_int "preorder covers all blocks" 5 (List.length pre);
  check_int "starts at entry" 0 (List.hd pre)

let test_split_critical_edges () =
  (* 0 -> 1|2 ; 1 -> 2 ; 2 ret : edge 0->2 is critical *)
  let _, f = mk_cfg [| [ 1; 2 ]; [ 2 ]; [] |] in
  let split = Cfg_utils.split_critical_edges f in
  check_int "one edge split" 1 split;
  Cfg_utils.validate f;
  (* after splitting: no critical edges remain *)
  check_int "no more critical edges" 0 (Cfg_utils.split_critical_edges f);
  (* the new block lies between 0 and 2 *)
  let b0 = Sir.block f 0 in
  (match b0.Sir.term with
   | Sir.Tcond (_, _, e) ->
     let nb = Sir.block f e in
     Alcotest.(check (list int)) "splitter goes to 2" [ 2 ] (Sir.succs nb)
   | _ -> Alcotest.fail "entry should stay conditional")

let test_validate_catches_bad_edge () =
  let _, f = mk_cfg [| [ 1 ]; [] |] in
  (Sir.block f 0).Sir.term <- Sir.Tgoto 5;
  (try
     Cfg_utils.validate f;
     Alcotest.fail "expected validation failure"
   with Failure _ -> ())

(* Property: CHK idoms agree with naive dominator sets on random CFGs. *)
let random_cfg_gen =
  QCheck.Gen.(
    sized_size (int_range 2 12) (fun n ->
        let n = max n 2 in
        (* every block i>0 gets a random in-edge from a lower block to keep
           most blocks reachable; extra random edges create joins/loops *)
        let* targets =
          array_repeat n (pair (int_bound (n - 1)) (int_bound (n - 1)))
        in
        return
          (Array.init n (fun i ->
               let t1, t2 = targets.(i) in
               if i = n - 1 then []
               else if t1 = t2 then [ ((i + 1 + t1) mod n) ]
               else [ (i + 1) mod n; t2 ]))))

let prop_dominators_agree =
  QCheck.Test.make ~count:200 ~name:"CHK idom agrees with naive dataflow"
    (QCheck.make random_cfg_gen)
    (fun succs ->
      let _, f = mk_cfg succs in
      let d = Dom.compute f in
      let naive = naive_dominators f in
      let rpo, _ = Dom.compute_rpo f in
      let reachable = Array.make (Sir.n_blocks f) false in
      Array.iter (fun b -> reachable.(b) <- true) rpo;
      Array.for_all
        (fun b ->
          if not reachable.(b) || b = Sir.entry_bid then true
          else begin
            (* idom must be the unique closest strict dominator *)
            let doms = naive.(b) in
            let id = Dom.idom d b in
            doms.(id)
            && id <> b
            && Array.for_all Fun.id
                 (Array.mapi
                    (fun a dom_ab ->
                      (not dom_ab) || a = b || a = id
                      || naive.(id).(a))
                    doms)
          end)
        rpo)

let prop_dominates_matches_naive =
  QCheck.Test.make ~count:200 ~name:"dominates() matches naive sets"
    (QCheck.make random_cfg_gen)
    (fun succs ->
      let _, f = mk_cfg succs in
      let d = Dom.compute f in
      let naive = naive_dominators f in
      let rpo, _ = Dom.compute_rpo f in
      let reachable = Array.make (Sir.n_blocks f) false in
      Array.iter (fun b -> reachable.(b) <- true) rpo;
      let ok = ref true in
      Array.iter
        (fun b ->
          Array.iter
            (fun a ->
              if reachable.(a) && Dom.dominates d a b <> naive.(b).(a) then
                ok := false)
            rpo)
        rpo;
      !ok)

let prop_df_correct =
  (* b in DF(a) iff a dominates a pred of b but not strictly b *)
  QCheck.Test.make ~count:200 ~name:"dominance frontier definition"
    (QCheck.make random_cfg_gen)
    (fun succs ->
      let _, f = mk_cfg succs in
      let d = Dom.compute f in
      let rpo, _ = Dom.compute_rpo f in
      let reachable = Array.make (Sir.n_blocks f) false in
      Array.iter (fun r -> reachable.(r) <- true) rpo;
      let ok = ref true in
      Array.iter
        (fun a ->
          Array.iter
            (fun b ->
              let in_df = List.mem b (Dom.dominance_frontier d a) in
              let should =
                List.exists
                  (fun p -> reachable.(p) && Dom.dominates d a p)
                  (Sir.block f b).Sir.preds
                && not (Dom.strictly_dominates d a b)
              in
              if in_df <> should then ok := false)
            rpo)
        rpo;
      !ok)

let suite =
  [ Alcotest.test_case "diamond" `Quick test_diamond;
    Alcotest.test_case "loop dominators" `Quick test_loop_dom;
    Alcotest.test_case "nested loops" `Quick test_nested_loops;
    Alcotest.test_case "iterated DF" `Quick test_df_plus;
    Alcotest.test_case "preorder" `Quick test_preorder_covers_all;
    Alcotest.test_case "split critical edges" `Quick test_split_critical_edges;
    Alcotest.test_case "validate bad edge" `Quick test_validate_catches_bad_edge;
    QCheck_alcotest.to_alcotest prop_dominators_agree;
    QCheck_alcotest.to_alcotest prop_dominates_matches_naive;
    QCheck_alcotest.to_alcotest prop_df_correct ]
