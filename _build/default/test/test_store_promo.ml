(* Tests for speculative register promotion of stores. *)

open Spec_ir
open Spec_driver

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let interp p = Spec_prof.Interp.run p

let optimize ?(variant = Pipeline.Spec_heuristic) src =
  let prof = Pipeline.profile_of_source src in
  (Pipeline.compile_and_optimize ~edge_profile:(Some prof) src variant)
    .Pipeline.prog

(* accumulator through a pointer: the classic store-promotion shape *)
let acc_src =
  "int main(){ int* sum; sum = (int*)malloc(8); *sum = 0; \
   int* a; a = (int*)malloc(512); \
   for (int i = 0; i < 64; i++) a[i] = i; \
   for (int i = 0; i < 64; i++) { *sum = *sum + a[i]; } \
   print_int(*sum); return 0; }"

let test_accumulator_promoted () =
  let baseline = interp (Lower.compile acc_src) in
  let p = optimize acc_src in
  let r = interp p in
  check_str "output preserved" baseline.Spec_prof.Interp.output
    r.Spec_prof.Interp.output;
  (* the hot loop must no longer store each iteration: 64 stores gone *)
  check_bool "stores removed" true
    (r.Spec_prof.Interp.counters.Spec_prof.Interp.mem_stores
     < baseline.Spec_prof.Interp.counters.Spec_prof.Interp.mem_stores - 50)

let test_machine_agrees () =
  let baseline = interp (Lower.compile acc_src) in
  let p = optimize acc_src in
  let m = Spec_machine.Machine.run_sir p in
  check_str "machine output preserved" baseline.Spec_prof.Interp.output
    m.Spec_machine.Machine.output;
  check_bool "machine stores reduced" true
    (m.Spec_machine.Machine.perf.Spec_machine.Machine.stores < 100)

(* promotion across an unlikely-aliasing store, with real mis-speculation
   on some iterations: the ld.c after the store must resynchronize t *)
let misspec_src =
  "int main(){ int* sum; sum = (int*)malloc(8); *sum = 0; \
   int* decoy; decoy = (int*)malloc(8); \
   for (int i = 0; i < 200; i++) { \
     int* w; w = decoy; \
     if (rnd(100) < 7) w = sum; \
     *sum = *sum + i; \
     *w = 1000000 + i; \
   } \
   print_int(*sum); print_int(*decoy); return 0; }"

let test_misspeculation_resync () =
  let baseline = interp (Lower.compile misspec_src) in
  let p = optimize misspec_src in
  let r = interp p in
  check_str "interpreter output preserved" baseline.Spec_prof.Interp.output
    r.Spec_prof.Interp.output;
  let m = Spec_machine.Machine.run_sir p in
  check_str "machine output preserved" baseline.Spec_prof.Interp.output
    m.Spec_machine.Machine.output

let test_aliasing_load_blocks_promotion () =
  (* a second pointer reads the location with different syntax: the group
     must NOT be promoted (stale-memory hazard) *)
  let src =
    "int main(){ int* sum; sum = (int*)malloc(8); *sum = 0; \
     int* alias; alias = sum; \
     int observed; observed = 0; \
     for (int i = 0; i < 32; i++) { \
       *sum = *sum + i; \
       observed = observed + *alias; \
     } \
     print_int(*sum); print_int(observed); return 0; }"
  in
  let baseline = interp (Lower.compile src) in
  let p = optimize src in
  check_str "output preserved despite tempting promotion"
    baseline.Spec_prof.Interp.output (interp p).Spec_prof.Interp.output

let test_conditional_store_not_promoted () =
  (* the group store does not execute on every iteration: promoting would
     introduce a load+store of a possibly-invalid address *)
  let src =
    "int main(){ int* sum; sum = (int*)malloc(8); *sum = 5; \
     for (int i = 0; i < 16; i++) { \
       if (i > 100) { *sum = *sum + i; } \
     } \
     print_int(*sum); return 0; }"
  in
  let baseline = interp (Lower.compile src) in
  let p = optimize src in
  check_str "output preserved" baseline.Spec_prof.Interp.output
    (interp p).Spec_prof.Interp.output

let test_call_blocks_promotion () =
  let src =
    "int g; \
     void peek(int* p){ g = g + *p; } \
     int main(){ int* sum; sum = (int*)malloc(8); *sum = 0; \
     for (int i = 0; i < 16; i++) { \
       *sum = *sum + i; \
       peek(sum); \
     } \
     print_int(*sum); print_int(g); return 0; }"
  in
  let baseline = interp (Lower.compile src) in
  let p = optimize src in
  check_str "callee observes every store" baseline.Spec_prof.Interp.output
    (interp p).Spec_prof.Interp.output

let prop_store_promo_differential =
  QCheck.Test.make ~count:50
    ~name:"store promotion preserves behaviour under random aliasing"
    (QCheck.make ~print:Fun.id
       QCheck.Gen.(
         let* n = int_range 4 40 in
         let* alias_pct = int_range 0 100 in
         let* extra_load = bool in
         return
           (Printf.sprintf
              "int main(){ int* sum; sum = (int*)malloc(8); *sum = 0; \
               int* d; d = (int*)malloc(8); *d = 0; \
               for (int i = 0; i < %d; i++) { \
                 int* w; if (rnd(100) < %d) w = sum; else w = d; \
                 *sum = *sum + i; \
                 *w = *w + 100; %s \
               } \
               print_int(*sum); print_int(*d); return 0; }"
              n alias_pct
              (if extra_load then "*d = *d + 1;" else ""))))
    (fun src ->
      let baseline = interp (Lower.compile src) in
      let heur = optimize src in
      let prof = Pipeline.profile_of_source src in
      let prof_p = optimize ~variant:(Pipeline.Spec_profile prof) src in
      (interp heur).Spec_prof.Interp.output = baseline.Spec_prof.Interp.output
      && (interp prof_p).Spec_prof.Interp.output
         = baseline.Spec_prof.Interp.output
      && (Spec_machine.Machine.run_sir heur).Spec_machine.Machine.output
         = baseline.Spec_prof.Interp.output)

let suite =
  [ Alcotest.test_case "accumulator promoted" `Quick test_accumulator_promoted;
    Alcotest.test_case "machine agrees" `Quick test_machine_agrees;
    Alcotest.test_case "misspeculation resync" `Quick test_misspeculation_resync;
    Alcotest.test_case "aliasing load blocks" `Quick test_aliasing_load_blocks_promotion;
    Alcotest.test_case "conditional store blocked" `Quick test_conditional_store_not_promoted;
    Alcotest.test_case "call blocks promotion" `Quick test_call_blocks_promotion;
    QCheck_alcotest.to_alcotest prop_store_promo_differential ]
