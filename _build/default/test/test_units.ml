(* Unit tests for the small substrate modules: Vec, Types, Memory, the
   ALAT, the cache model, and the PRE candidate classifier. *)

open Spec_ir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ---- Vec ---- *)

let test_vec () =
  let v = Vec.create 0 in
  check_int "empty" 0 (Vec.length v);
  for i = 0 to 99 do Vec.push v (i * i) done;
  check_int "length" 100 (Vec.length v);
  check_int "get" 49 (Vec.get v 7);
  Vec.set v 7 1000;
  check_int "set" 1000 (Vec.get v 7);
  check_int "push_get returns index" 100 (Vec.push_get v 5);
  let sum = Vec.fold ( + ) 0 v in
  check_bool "fold sums" true (sum > 0);
  check_bool "exists" true (Vec.exists (fun x -> x = 1000) v);
  check_bool "not exists" false (Vec.exists (fun x -> x = -1) v);
  (try
     ignore (Vec.get v 200);
     Alcotest.fail "expected out-of-bounds"
   with Invalid_argument _ -> ());
  (try
     Vec.set v (-1) 0;
     Alcotest.fail "expected out-of-bounds"
   with Invalid_argument _ -> ());
  check_int "of_list/to_list" 3
    (List.length (Vec.to_list (Vec.of_list 0 [ 1; 2; 3 ])))

(* ---- Types ---- *)

let test_types () =
  check_int "cell size" 8 Types.cell_size;
  check_int "int size" 8 (Types.size_of Types.Tint);
  check_int "void size" 0 (Types.size_of Types.Tvoid);
  check_bool "fp" true (Types.is_fp Types.Tflt);
  check_bool "ptr" true (Types.is_ptr (Types.Tptr Types.Tint));
  check_bool "int/ptr compatible" true
    (Types.compatible Types.Tint (Types.Tptr Types.Tflt));
  check_bool "int/float incompatible" false
    (Types.compatible Types.Tint Types.Tflt);
  Alcotest.(check string) "pp nested ptr" "int**"
    (Types.to_string (Types.Tptr (Types.Tptr Types.Tint)));
  check_bool "deref" true (Types.deref (Types.Tptr Types.Tflt) = Types.Tflt);
  (try
     ignore (Types.deref Types.Tint);
     Alcotest.fail "expected invalid deref"
   with Invalid_argument _ -> ())

(* ---- Memory ---- *)

let mk_mem () =
  let p = Lower.compile "int g; int h[4]; int main(){ return 0; }" in
  Spec_prof.Memory.create p, p

let test_memory_basic () =
  let m, p = mk_mem () in
  let g = List.hd p.Sir.globals in
  let addr = Spec_prof.Memory.global_addr m g in
  Spec_prof.Memory.store_int m addr 42;
  check_int "store/load" 42 (Spec_prof.Memory.load_int m addr);
  Spec_prof.Memory.store_flt m (addr + 8) 2.5;
  Alcotest.(check (float 0.)) "float cell" 2.5
    (Spec_prof.Memory.load_flt m (addr + 8))

let test_memory_faults () =
  let m, _ = mk_mem () in
  List.iter
    (fun addr ->
      try
        ignore (Spec_prof.Memory.load_int m addr);
        Alcotest.failf "expected fault at %d" addr
      with Spec_prof.Memory.Fault _ -> ())
    [ 0; 4; 12; -8; 1 lsl 40 ];
  (* speculative loads never fault *)
  check_int "spec load of bad address" 0
    (Spec_prof.Memory.load_int_spec m 0);
  Alcotest.(check (float 0.)) "spec fp load of bad address" 0.
    (Spec_prof.Memory.load_flt_spec m 4)

let test_memory_stack_and_heap () =
  let m, _ = mk_mem () in
  let mark = Spec_prof.Memory.stack_mark m in
  let a1 = Spec_prof.Memory.push_frame_var m 100 16 in
  let a2 = Spec_prof.Memory.push_frame_var m 101 8 in
  check_bool "stack grows" true (a2 = a1 + 16);
  check_bool "stack locs resolve" true
    (Spec_prof.Memory.loc_of_addr m a1 = Some (Loc.Lvar 100));
  Spec_prof.Memory.pop_frame m mark;
  check_bool "popped slots lose their loc" true
    (Spec_prof.Memory.loc_of_addr m a1 = None);
  let h1 = Spec_prof.Memory.malloc m ~site:7 30 in
  let h2 = Spec_prof.Memory.malloc m ~site:9 8 in
  check_int "malloc rounds up to cells" (h1 + 32) h2;
  check_bool "heap loc by site" true
    (Spec_prof.Memory.loc_of_addr m (h1 + 8) = Some (Loc.Lheap 7));
  check_bool "second allocation site" true
    (Spec_prof.Memory.loc_of_addr m h2 = Some (Loc.Lheap 9));
  check_bool "past-the-heap unresolved" true
    (Spec_prof.Memory.loc_of_addr m (h2 + 64) = None)

(* ---- ALAT ---- *)

let test_alat_basic () =
  let a = Spec_machine.Alat.create () in
  Spec_machine.Alat.insert a ~frame:1 ~reg:5 ~addr:0x1000;
  check_bool "hit after insert" true
    (Spec_machine.Alat.check a ~frame:1 ~reg:5);
  check_bool "other reg misses" false
    (Spec_machine.Alat.check a ~frame:1 ~reg:6);
  check_bool "other frame misses" false
    (Spec_machine.Alat.check a ~frame:2 ~reg:5);
  Spec_machine.Alat.invalidate_store a ~addr:0x1000 ~bytes:8;
  check_bool "store invalidates" false
    (Spec_machine.Alat.check a ~frame:1 ~reg:5)

let test_alat_partial_overlap () =
  let a = Spec_machine.Alat.create () in
  Spec_machine.Alat.insert a ~frame:1 ~reg:5 ~addr:0x1000;
  Spec_machine.Alat.invalidate_store a ~addr:0x1008 ~bytes:8;
  check_bool "disjoint store keeps entry" true
    (Spec_machine.Alat.check a ~frame:1 ~reg:5);
  Spec_machine.Alat.invalidate_store a ~addr:0x0FF8 ~bytes:16;
  check_bool "overlapping store invalidates" false
    (Spec_machine.Alat.check a ~frame:1 ~reg:5)

let test_alat_same_reg_replaced () =
  let a = Spec_machine.Alat.create () in
  Spec_machine.Alat.insert a ~frame:1 ~reg:5 ~addr:0x1000;
  Spec_machine.Alat.insert a ~frame:1 ~reg:5 ~addr:0x2000;
  (* only the newest address backs the register *)
  Spec_machine.Alat.invalidate_store a ~addr:0x1000 ~bytes:8;
  check_bool "old address no longer tracked" true
    (Spec_machine.Alat.check a ~frame:1 ~reg:5);
  Spec_machine.Alat.invalidate_store a ~addr:0x2000 ~bytes:8;
  check_bool "new address tracked" false
    (Spec_machine.Alat.check a ~frame:1 ~reg:5)

let test_alat_capacity () =
  let a = Spec_machine.Alat.create ~entries:4 ~assoc:2 () in
  (* five entries mapping into two sets: someone must be evicted *)
  for r = 0 to 7 do
    Spec_machine.Alat.insert a ~frame:1 ~reg:r ~addr:(0x1000 + (r * 8))
  done;
  let live = ref 0 in
  for r = 0 to 7 do
    if Spec_machine.Alat.check a ~frame:1 ~reg:r then incr live
  done;
  check_bool "capacity bounds live entries" true (!live <= 4);
  check_bool "evictions recorded" true (a.Spec_machine.Alat.capacity_evictions > 0)

(* ---- cache ---- *)

let test_cache_latencies () =
  let c = Spec_machine.Cache.create () in
  let cold = Spec_machine.Cache.load_latency c ~fp:false 0x10000 in
  check_int "cold miss costs memory latency" 120 cold;
  let warm = Spec_machine.Cache.load_latency c ~fp:false 0x10000 in
  check_int "L1 hit" 2 warm;
  let same_line = Spec_machine.Cache.load_latency c ~fp:false 0x10008 in
  check_int "same line hits" 2 same_line;
  (* fp bypasses L1: second access still pays L2 *)
  let fp_cold = Spec_machine.Cache.load_latency c ~fp:true 0x20000 in
  check_int "fp cold" 120 fp_cold;
  let fp_warm = Spec_machine.Cache.load_latency c ~fp:true 0x20000 in
  check_int "fp warm stays at L2 latency" 9 fp_warm

let test_cache_store_allocates () =
  let c = Spec_machine.Cache.create () in
  Spec_machine.Cache.store c 0x30000;
  check_int "load after store hits" 2
    (Spec_machine.Cache.load_latency c ~fp:false 0x30000)

(* ---- candidates ---- *)

let test_candidates () =
  let p =
    Lower.compile
      "int g; int main(){ int* q; q = &g; int x; x = *q + g * 2; return x; }"
  in
  let syms = p.Sir.syms in
  let f = Sir.find_func p "main" in
  let found = ref [] in
  Vec.iter
    (fun (b : Sir.bb) ->
      List.iter
        (fun (s : Sir.stmt) ->
          List.iter
            (Spec_ssapre.Candidates.iter_candidates syms ~arith_pre:true
               (fun key tgt _ -> found := (key, tgt) :: !found))
            (Sir.stmt_exprs s.Sir.kind))
        b.Sir.stmts)
    f.Sir.fblocks;
  (* expect: the iload *q, the direct load of g (memory resident), and the
     arithmetic g*2 is NOT pure (g is a memory load), so g itself is the
     candidate *)
  let kinds =
    List.map
      (function
        | _, Spec_spec.Kills.Tsite _ -> "site"
        | _, Spec_spec.Kills.Tvar _ -> "var"
        | _, Spec_spec.Kills.Tpure -> "pure")
      !found
    |> List.sort compare
  in
  check_bool "found an iload candidate" true (List.mem "site" kinds);
  check_bool "found a scalar candidate" true (List.mem "var" kinds)

let test_candidate_keys_stable () =
  let p =
    Lower.compile
      "int main(int n){ int* q; q = (int*)malloc(64); \
       int x; x = q[3]; int y; y = q[3]; return x + y; }"
  in
  let syms = p.Sir.syms in
  let f = Sir.find_func p "main" in
  let keys = ref [] in
  Vec.iter
    (fun (b : Sir.bb) ->
      List.iter
        (fun (s : Sir.stmt) ->
          List.iter
            (Spec_ssapre.Candidates.iter_candidates syms ~arith_pre:false
               (fun key _ _ -> keys := key :: !keys))
            (Sir.stmt_exprs s.Sir.kind))
        b.Sir.stmts)
    f.Sir.fblocks;
  (match !keys with
   | [ k1; k2 ] -> check_str "same lexical key for q[3] twice" k1 k2
   | ks -> Alcotest.failf "expected 2 candidates, got %d" (List.length ks))

let suite =
  [ Alcotest.test_case "vec" `Quick test_vec;
    Alcotest.test_case "types" `Quick test_types;
    Alcotest.test_case "memory basic" `Quick test_memory_basic;
    Alcotest.test_case "memory faults" `Quick test_memory_faults;
    Alcotest.test_case "memory stack/heap" `Quick test_memory_stack_and_heap;
    Alcotest.test_case "alat basic" `Quick test_alat_basic;
    Alcotest.test_case "alat overlap" `Quick test_alat_partial_overlap;
    Alcotest.test_case "alat same reg" `Quick test_alat_same_reg_replaced;
    Alcotest.test_case "alat capacity" `Quick test_alat_capacity;
    Alcotest.test_case "cache latencies" `Quick test_cache_latencies;
    Alcotest.test_case "cache store allocates" `Quick test_cache_store_allocates;
    Alcotest.test_case "candidates" `Quick test_candidates;
    Alcotest.test_case "candidate keys" `Quick test_candidate_keys_stable ]
