test/test_workloads.ml: Alcotest Experiments Hashtbl List Lower Sir Spec_driver Spec_ir Spec_machine Spec_prof Spec_ssapre Spec_workloads String Workloads
