test/test_frontend.ml: Alcotest Ast Fmt Hashtbl Lexer List Lower Option Parser Pp Sir Spec_ir String Symtab Types Vec
