test/test_machine.ml: Alcotest Buffer Fun List Lower Machine Pipeline Printf QCheck QCheck_alcotest Spec_codegen Spec_driver Spec_ir Spec_machine Spec_prof
