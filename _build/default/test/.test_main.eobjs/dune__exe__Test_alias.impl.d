test/test_alias.ml: Alcotest Annotate Hashtbl List Lower Modref Option Sir Spec_alias Spec_ir Steensgaard Symtab Vec
