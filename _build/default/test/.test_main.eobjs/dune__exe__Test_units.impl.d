test/test_units.ml: Alcotest List Loc Lower Sir Spec_ir Spec_machine Spec_prof Spec_spec Spec_ssapre Types Vec
