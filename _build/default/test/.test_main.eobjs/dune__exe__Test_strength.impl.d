test/test_strength.ml: Alcotest Array Fun List Lower Pipeline Printf QCheck QCheck_alcotest Sir Spec_cfg Spec_driver Spec_ir Spec_machine Spec_prof Spec_ssapre Types Vec
