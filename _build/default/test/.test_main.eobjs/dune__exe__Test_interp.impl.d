test/test_interp.ml: Alcotest Hashtbl Interp List Load_reuse Loc Lower Memory Profile Profiler Sir Spec_ir Spec_prof String Symtab Vec
