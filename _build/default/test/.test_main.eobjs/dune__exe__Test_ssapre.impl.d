test/test_ssapre.ml: Alcotest Fun List Lower Pipeline Printf QCheck QCheck_alcotest Sir Spec_driver Spec_ir Spec_prof String Vec
