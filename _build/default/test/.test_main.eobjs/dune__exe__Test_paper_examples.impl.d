test/test_paper_examples.ml: Alcotest Cfg_utils Hashtbl List Lower Option Pipeline Sir Spec_alias Spec_cfg Spec_driver Spec_ir Spec_prof Spec_spec Spec_ssa Symtab Vec
