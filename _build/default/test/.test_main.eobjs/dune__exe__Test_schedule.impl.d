test/test_schedule.ml: Alcotest Codegen Fun List Machine Pipeline Printf QCheck QCheck_alcotest Schedule Spec_codegen Spec_driver Spec_ir Spec_machine
