test/test_store_promo.ml: Alcotest Fun Lower Pipeline Printf QCheck QCheck_alcotest Spec_driver Spec_ir Spec_machine Spec_prof
