test/test_fuzz.ml: Alcotest Fun List Lower Pipeline Printf QCheck QCheck_alcotest Random Spec_codegen Spec_driver Spec_ir Spec_machine Spec_prof String
