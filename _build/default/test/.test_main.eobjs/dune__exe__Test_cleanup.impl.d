test/test_cleanup.ml: Alcotest Fun List Lower Pipeline Printf QCheck QCheck_alcotest Sir Spec_driver Spec_ir Spec_prof Spec_ssapre Vec
