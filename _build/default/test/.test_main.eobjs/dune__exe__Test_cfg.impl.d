test/test_cfg.ml: Alcotest Array Cfg_utils Dom Fun List QCheck QCheck_alcotest Sir Spec_cfg Spec_ir Types
