test/test_refine.ml: Alcotest Cfg_utils Experiments Hashtbl List Loc Lower Pipeline Sir Spec_alias Spec_cfg Spec_driver Spec_ir Spec_prof Spec_ssa Symtab Vec
