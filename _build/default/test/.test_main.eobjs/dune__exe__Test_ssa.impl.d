test/test_ssa.ml: Alcotest Annotate Build_ssa Cfg_utils Fun List Lower Option Out_of_ssa Printf QCheck QCheck_alcotest Sir Spec_alias Spec_cfg Spec_ir Spec_prof Spec_ssa Ssa_check String Symtab Vec
