(* Golden tests for the paper's worked examples: the speculative SSA form
   of Example 1 and the occurrence relationships of Figure 5. *)

open Spec_ir
open Spec_cfg
open Spec_driver

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Example 1 (§3.1): a and b are potential aliases of *p; the profile
   observes p -> b only.  The chi/mu on b must carry the speculation flag
   (highly likely), the chi/mu on a must not (speculative weak update). *)
let example1_src =
  "int a; int b; \
   int main(){ int* p; \
   a = 1; b = 2; \
   if (rnd(10) == 99) p = &a; else p = &b; \
   *p = 4; \
   int x; x = a; \
   a = 4; \
   int y; y = *p; \
   print_int(x + y); return 0; }"

let build_spec_ssa src mode =
  let p = Lower.compile src in
  let annot = Spec_alias.Annotate.run p in
  Spec_spec.Flags.assign p annot mode;
  Sir.iter_funcs
    (fun f -> ignore (Cfg_utils.split_critical_edges f : int))
    p;
  ignore (Spec_ssa.Build_ssa.build p);
  p

let find_var p name =
  let found = ref (-1) in
  Symtab.iter
    (fun v ->
      if v.Symtab.vname = name && v.Symtab.vorig = v.Symtab.vid then
        found := v.Symtab.vid)
    p.Sir.syms;
  !found

let orig p v = (Symtab.orig p.Sir.syms v).Symtab.vid

let test_example1_flags () =
  let prof = Pipeline.profile_of_source example1_src in
  let p = build_spec_ssa example1_src (Spec_spec.Flags.Profile_spec prof) in
  let va = find_var p "a" and vb = find_var p "b" in
  let f = Sir.find_func p "main" in
  (* the istore *p = 4 *)
  let istore = ref None and iload_mus = ref [] in
  Vec.iter
    (fun (b : Sir.bb) ->
      List.iter
        (fun (s : Sir.stmt) ->
          (match s.Sir.kind with
           | Sir.Istr _ -> istore := Some s
           | _ -> ());
          let has_iload = ref false in
          List.iter
            (Sir.iter_subexprs (function
              | Sir.Ilod _ -> has_iload := true
              | _ -> ()))
            (Sir.stmt_exprs s.Sir.kind);
          if (!has_iload || s.Sir.kind = Sir.Snop) && s.Sir.mus <> [] then
            iload_mus := !iload_mus @ s.Sir.mus)
        b.Sir.stmts)
    f.Sir.fblocks;
  let istore = Option.get !istore in
  let chi_flag target =
    match
      List.find_opt
        (fun (c : Sir.chi) -> orig p c.Sir.chi_var = target)
        istore.Sir.chis
    with
    | Some c -> Some c.Sir.chi_spec
    | None -> None
  in
  (* paper: s3 b2 <- chi_s(b1) ; s2 a2 <- chi(a1) *)
  check_bool "chi on b is flagged (chi_s)" true (chi_flag vb = Some true);
  check_bool "chi on a is a speculative weak update" true
    (chi_flag va = Some false);
  (* paper: s7 mu_s(b2), mu(a3) on the load of *p *)
  let mu_flag target =
    match
      List.find_opt
        (fun (m : Sir.mu) -> orig p m.Sir.mu_var = target)
        !iload_mus
    with
    | Some m -> Some m.Sir.mu_spec
    | None -> None
  in
  check_bool "mu on b is flagged (mu_s)" true (mu_flag vb = Some true);
  check_bool "mu on a is unflagged" true (mu_flag va = Some false)

let test_example1_nonspec_flags_everything () =
  let p = build_spec_ssa example1_src Spec_spec.Flags.Nonspec in
  let f = Sir.find_func p "main" in
  Vec.iter
    (fun (b : Sir.bb) ->
      List.iter
        (fun (s : Sir.stmt) ->
          List.iter
            (fun (c : Sir.chi) ->
              check_bool "nonspec flags every chi" true c.Sir.chi_spec)
            s.Sir.chis)
        b.Sir.stmts)
    f.Sir.fblocks

(* Figure 5: the three occurrence relationships for two loads of a.
   (a) no intervening store: plainly redundant (reload, no check);
   (b) may-modify store under the nonspeculative analysis: not redundant;
   (c) the same store under speculation: speculatively redundant
       (reload + check). *)
let fig5_count src variant =
  let prof = Pipeline.profile_of_source src in
  let r =
    Pipeline.compile_and_optimize ~edge_profile:(Some prof) src variant
  in
  let marks = Hashtbl.create 4 in
  Sir.iter_funcs
    (fun f ->
      Vec.iter
        (fun (b : Sir.bb) ->
          List.iter
            (fun (s : Sir.stmt) ->
              Hashtbl.replace marks s.Sir.mark
                (1
                 + Option.value ~default:0 (Hashtbl.find_opt marks s.Sir.mark)))
            b.Sir.stmts)
        f.Sir.fblocks)
    r.Pipeline.prog;
  (fun m -> Option.value ~default:0 (Hashtbl.find_opt marks m))

let test_fig5a_redundant () =
  let src =
    "int g; int main(){ int x; x = g; int y; y = g; print_int(x + y); \
     return 0; }"
  in
  let count = fig5_count src Pipeline.Base in
  check_int "no check needed when plainly redundant" 0 (count Sir.Mchk);
  (* the second load is gone entirely *)
  let p = (Pipeline.compile_and_optimize src Pipeline.Base).Pipeline.prog in
  let loads =
    (Spec_prof.Interp.run p).Spec_prof.Interp.counters.Spec_prof.Interp.mem_loads
  in
  check_int "one load remains" 1 loads

let fig5bc_src =
  "int g; int h; \
   int main(){ int* p; p = &h; \
   if (rnd(10) == 99) p = &g; \
   int x; x = g; \
   *p = 5; \
   int y; y = g; \
   print_int(x + y); return 0; }"

let test_fig5b_not_redundant_nonspec () =
  let count = fig5_count fig5bc_src Pipeline.Base in
  check_int "nonspeculative: no speculation marks" 0
    (count Sir.Mchk + count Sir.Madv)

let test_fig5c_speculatively_redundant () =
  let count = fig5_count fig5bc_src Pipeline.Spec_heuristic in
  check_bool "speculative: check generated" true (count Sir.Mchk >= 1);
  check_bool "speculative: advanced load marked" true (count Sir.Madv >= 1)

let suite =
  [ Alcotest.test_case "example 1 flags (profile)" `Quick test_example1_flags;
    Alcotest.test_case "example 1 nonspec" `Quick test_example1_nonspec_flags_everything;
    Alcotest.test_case "fig5a redundant" `Quick test_fig5a_redundant;
    Alcotest.test_case "fig5b not redundant" `Quick test_fig5b_not_redundant_nonspec;
    Alcotest.test_case "fig5c speculatively redundant" `Quick test_fig5c_speculatively_redundant ]
