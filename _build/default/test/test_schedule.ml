(* Tests for the local ITL list scheduler. *)

open Spec_ir
open Spec_driver
open Spec_codegen
open Spec_machine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let lower_opt src variant =
  let prof = Pipeline.profile_of_source src in
  let r =
    Pipeline.compile_and_optimize ~edge_profile:(Some prof) src variant
  in
  Codegen.lower r.Pipeline.prog

let test_semantics_preserved () =
  let srcs =
    [ "int a[16]; int main(){ int s; s = 0; \
       for (int i = 0; i < 16; i++) a[i] = i * 3; \
       for (int i = 0; i < 16; i++) s += a[i]; \
       print_int(s); return 0; }";
      "float v[32]; int main(){ float s; s = 0.0; \
       for (int i = 0; i < 32; i++) v[i] = (float)(i) / 2.0; \
       for (int i = 0; i < 32; i++) s = s + v[i] * v[i]; \
       print_flt(s); return 0; }";
      "int fib(int n){ if (n < 2) return n; return fib(n-1) + fib(n-2); } \
       int main(){ print_int(fib(11)); return 0; }" ]
  in
  List.iter
    (fun src ->
      let plain = lower_opt src Pipeline.Base in
      let sched = lower_opt src Pipeline.Base in
      ignore (Schedule.run sched : Schedule.stats);
      let r1 = Machine.run plain in
      let r2 = Machine.run sched in
      check_str "output unchanged" r1.Machine.output r2.Machine.output;
      (* memory-system behaviour must be identical *)
      check_int "same loads" (Machine.loads_retired r1.Machine.perf)
        (Machine.loads_retired r2.Machine.perf);
      check_int "same stores" r1.Machine.perf.Machine.stores
        r2.Machine.perf.Machine.stores)
    srcs

let test_speculative_code_preserved () =
  let src =
    "int g; int h; \
     int main(){ int s; s = 0; g = 7; int* w; w = &h; \
     if (rnd(1000) == 999) w = &g; \
     for (int i = 0; i < 100; i++) { s = s + g; *w = i; } \
     print_int(s); print_int(h); return 0; }"
  in
  let plain = lower_opt src Pipeline.Spec_heuristic in
  let sched = lower_opt src Pipeline.Spec_heuristic in
  ignore (Schedule.run sched : Schedule.stats);
  let r1 = Machine.run plain in
  let r2 = Machine.run sched in
  check_str "output unchanged" r1.Machine.output r2.Machine.output;
  (* check/ALAT behaviour is untouched because memory order is kept *)
  check_int "same checks" r1.Machine.perf.Machine.checks
    r2.Machine.perf.Machine.checks;
  check_int "same check misses" r1.Machine.perf.Machine.check_misses
    r2.Machine.perf.Machine.check_misses

let test_scheduler_hides_latency () =
  (* a long-latency FP load whose consumer is immediately next, followed
     by plenty of independent integer work the scheduler can move up *)
  let src =
    "float v[8]; int main(){ float acc; acc = 0.0; int k; k = 1; \
     for (int i = 0; i < 2000; i++) { \
       acc = acc + v[i % 8] * 2.0; \
       k = k * 3 + 1; k = k % 1000; k = k + i; k = k % 777; \
     } \
     print_flt(acc); print_int(k); return 0; }"
  in
  let plain = lower_opt src Pipeline.Base in
  let sched = lower_opt src Pipeline.Base in
  let st = Schedule.run sched in
  check_bool "scheduler moved instructions" true (st.Schedule.moved > 0);
  let r1 = Machine.run plain in
  let r2 = Machine.run sched in
  check_str "output unchanged" r1.Machine.output r2.Machine.output;
  check_bool "scheduling does not slow the hot loop" true
    (r2.Machine.perf.Machine.cycles
     <= r1.Machine.perf.Machine.cycles + r1.Machine.perf.Machine.cycles / 50)

(* property: scheduling never changes observable behaviour *)
let prop_schedule_differential =
  QCheck.Test.make ~count:40 ~name:"scheduling preserves behaviour"
    (QCheck.make ~print:Fun.id
       QCheck.Gen.(
         let* n = int_range 3 10 in
         let* alias_pct = int_range 0 100 in
         return
           (Printf.sprintf
              "int a[4]; int b[4]; \
               int main(){ int* q; int s; s = 0; q = &b[0]; \
               for (int i = 0; i < %d; i++) { \
                 if (rnd(100) < %d) q = &a[i %% 4]; else q = &b[i %% 4]; \
                 *q = i; s += a[0] + a[i %% 4] + b[1] + i * 5; } \
               print_int(s); return 0; }"
              n alias_pct)))
    (fun src ->
      let plain = lower_opt src Pipeline.Spec_heuristic in
      let sched = lower_opt src Pipeline.Spec_heuristic in
      ignore (Schedule.run sched : Schedule.stats);
      let r1 = Machine.run plain in
      let r2 = Machine.run sched in
      r1.Machine.output = r2.Machine.output
      && r1.Machine.perf.Machine.checks = r2.Machine.perf.Machine.checks
      && r1.Machine.perf.Machine.check_misses
         = r2.Machine.perf.Machine.check_misses)

let suite =
  [ Alcotest.test_case "semantics preserved" `Quick test_semantics_preserved;
    Alcotest.test_case "speculative code preserved" `Quick test_speculative_code_preserved;
    Alcotest.test_case "hides latency" `Quick test_scheduler_hides_latency;
    QCheck_alcotest.to_alcotest prop_schedule_differential ]
