(* Tests for strength reduction and linear function test replacement. *)

open Spec_ir
open Spec_driver

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* integer multiplications inside loop bodies (the preheader init
   legitimately keeps one multiply) *)
let count_loop_muls (p : Sir.prog) =
  let n = ref 0 in
  Sir.iter_funcs
    (fun f ->
      let dom = Spec_cfg.Dom.compute f in
      let depths = Spec_cfg.Cfg_utils.loop_depths f dom in
      Vec.iter
        (fun (b : Sir.bb) ->
          if depths.(b.Sir.bid) > 0 then begin
            let scan =
              Sir.iter_subexprs (function
                | Sir.Binop (Sir.Mul, Types.Tint, _, _) -> incr n
                | _ -> ())
            in
            List.iter
              (fun (s : Sir.stmt) ->
                List.iter scan (Sir.stmt_exprs s.Sir.kind))
              b.Sir.stmts;
            List.iter scan (Sir.term_exprs b.Sir.term)
          end)
        f.Sir.fblocks)
    p;
  !n

(* run SR alone (no PRE) on a compiled program *)
let sr_only src =
  let p = Lower.compile src in
  let stats = Spec_ssapre.Strength.run p in
  p, stats

let interp p = Spec_prof.Interp.run p

let test_basic_sr () =
  let src =
    "int a[64]; int main(){ int s; s = 0; \
     for (int i = 0; i < 64; i = i + 1) { s = s + a[i]; } \
     print_int(s); return 0; }"
  in
  let baseline = interp (Lower.compile src) in
  let p, stats = sr_only src in
  check_bool "reduced at least one multiply" true
    (stats.Spec_ssapre.Strength.reduced >= 1);
  let r = interp p in
  check_str "output preserved" baseline.Spec_prof.Interp.output
    r.Spec_prof.Interp.output;
  (* the scaled index i*8 must be gone from the loop *)
  check_int "no int multiplies remain in the loop" 0 (count_loop_muls p)

let test_lftr_removes_iv () =
  let src =
    "int a[32]; int main(){ int s; s = 0; \
     for (int i = 0; i < 32; i = i + 1) { a[i] = i + 1; } \
     for (int i = 0; i < 32; i = i + 1) { s = s + a[i]; } \
     print_int(s); return 0; }"
  in
  let baseline = interp (Lower.compile src) in
  let p, stats = sr_only src in
  check_bool "LFTR fired" true (stats.Spec_ssapre.Strength.lftr >= 1);
  check_str "output preserved" baseline.Spec_prof.Interp.output
    (interp p).Spec_prof.Interp.output

let test_sr_iv_used_elsewhere_no_lftr () =
  (* i escapes into the sum: LFTR must not remove its update *)
  let src =
    "int a[16]; int main(){ int s; s = 0; \
     for (int i = 0; i < 16; i = i + 1) { s = s + a[i] + i; } \
     print_int(s); return 0; }"
  in
  let baseline = interp (Lower.compile src) in
  let p, stats = sr_only src in
  check_int "no LFTR when the IV is live" 0 stats.Spec_ssapre.Strength.lftr;
  check_str "output preserved" baseline.Spec_prof.Interp.output
    (interp p).Spec_prof.Interp.output

let test_sr_negative_step () =
  let src =
    "int a[16]; int main(){ int s; s = 0; \
     for (int i = 15; i >= 0; i = i - 1) { s = s + a[i]; } \
     print_int(s); return 0; }"
  in
  let baseline = interp (Lower.compile src) in
  let p, stats = sr_only src in
  check_bool "negative step reduced" true
    (stats.Spec_ssapre.Strength.reduced >= 1);
  check_str "output preserved" baseline.Spec_prof.Interp.output
    (interp p).Spec_prof.Interp.output

let test_sr_nested_loops () =
  let src =
    "int m[256]; int main(){ int s; s = 0; \
     for (int i = 0; i < 16; i = i + 1) \
       for (int j = 0; j < 16; j = j + 1) \
         s = s + m[i * 16 + j]; \
     print_int(s); return 0; }"
  in
  let baseline = interp (Lower.compile src) in
  let p, stats = sr_only src in
  check_bool "nested reductions" true (stats.Spec_ssapre.Strength.reduced >= 2);
  check_str "output preserved" baseline.Spec_prof.Interp.output
    (interp p).Spec_prof.Interp.output

let test_sr_in_full_pipeline () =
  (* SR composes with speculative PRE in the full pipeline *)
  let src =
    "int g; int h; \
     int main(){ int s; s = 0; g = 3; int* w; w = &h; \
     if (rnd(1000) == 999) w = &g; \
     for (int i = 0; i < 64; i = i + 1) { s = s + g + i * 24; *w = i; } \
     print_int(s); print_int(h); return 0; }"
  in
  let baseline = interp (Lower.compile src) in
  let prof = Pipeline.profile_of_source src in
  let r =
    Pipeline.compile_and_optimize ~edge_profile:(Some prof) src
      Pipeline.Spec_heuristic
  in
  check_str "pipeline output preserved" baseline.Spec_prof.Interp.output
    (interp r.Pipeline.prog).Spec_prof.Interp.output;
  (* machine too *)
  let m = Spec_machine.Machine.run_sir r.Pipeline.prog in
  check_str "machine output preserved" baseline.Spec_prof.Interp.output
    m.Spec_machine.Machine.output

let test_sr_multiple_scales () =
  let src =
    "int a[32]; int b[64]; int main(){ int s; s = 0; \
     for (int i = 0; i < 32; i = i + 1) { s = s + a[i] + b[i * 2]; } \
     print_int(s); return 0; }"
  in
  let baseline = interp (Lower.compile src) in
  let p, stats = sr_only src in
  (* i*8 (for a) and i*2 then *8 (for b): at least two distinct scales *)
  check_bool "two scales reduced" true (stats.Spec_ssapre.Strength.reduced >= 2);
  check_str "output preserved" baseline.Spec_prof.Interp.output
    (interp p).Spec_prof.Interp.output

let prop_sr_random =
  QCheck.Test.make ~count:60 ~name:"strength reduction preserves semantics"
    (QCheck.make ~print:Fun.id
       QCheck.Gen.(
         let* n = int_range 2 20 in
         let* k = int_range 1 4 in
         let* step = int_range 1 3 in
         let* body_kind = int_range 0 2 in
         let body =
           match body_kind with
           | 0 -> Printf.sprintf "s = s + a[i %% 16] + i * %d;" k
           | 1 -> Printf.sprintf "a[(i * %d) %% 16] = s + i; s = s + a[i %% 16];" k
           | _ -> Printf.sprintf "s = s + i * %d + i * %d;" k (k + 8)
         in
         return
           (Printf.sprintf
              "int a[16]; int main(){ int s; s = 0; \
               for (int i = 0; i < %d; i = i + %d) { %s } \
               print_int(s); \
               int t; t = 0; \
               for (int j = 0; j < 16; j++) t = t + a[j]; \
               print_int(t); return 0; }"
              n step body)))
    (fun src ->
      let baseline = interp (Lower.compile src) in
      let p, _ = sr_only src in
      let after = interp p in
      baseline.Spec_prof.Interp.output = after.Spec_prof.Interp.output)

let suite =
  [ Alcotest.test_case "basic SR" `Quick test_basic_sr;
    Alcotest.test_case "LFTR removes IV" `Quick test_lftr_removes_iv;
    Alcotest.test_case "no LFTR when IV live" `Quick test_sr_iv_used_elsewhere_no_lftr;
    Alcotest.test_case "negative step" `Quick test_sr_negative_step;
    Alcotest.test_case "nested loops" `Quick test_sr_nested_loops;
    Alcotest.test_case "SR in full pipeline" `Quick test_sr_in_full_pipeline;
    Alcotest.test_case "multiple scales" `Quick test_sr_multiple_scales;
    QCheck_alcotest.to_alcotest prop_sr_random ]
