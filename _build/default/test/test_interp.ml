(* Tests for the reference interpreter, memory model, and profilers. *)

open Spec_ir
open Spec_prof

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let run src =
  let p = Lower.compile src in
  Interp.run p

let ret_int src =
  match (run src).Interp.ret with
  | Interp.Vint i -> i
  | Interp.Vflt _ -> Alcotest.fail "expected int return"

let test_arith () =
  check_int "arith" 14 (ret_int "int main(){ return 2 + 3 * 4; }");
  check_int "division" 3 (ret_int "int main(){ return 10 / 3; }");
  check_int "remainder" 1 (ret_int "int main(){ return 10 % 3; }");
  check_int "precedence with parens" 20
    (ret_int "int main(){ return (2 + 3) * 4; }");
  check_int "unary minus" (-5) (ret_int "int main(){ return -5; }");
  check_int "comparison" 1 (ret_int "int main(){ return 3 < 4; }");
  check_int "logical and strict" 0 (ret_int "int main(){ return 1 && 0; }");
  check_int "logical or" 1 (ret_int "int main(){ return 0 || 2; }");
  check_int "not" 1 (ret_int "int main(){ return !0; }")

let test_float_arith () =
  let r = run "float main(){ float x; x = 1.5; return x * 4.0; }" in
  (match r.Interp.ret with
   | Interp.Vflt f -> Alcotest.(check (float 1e-9)) "float mul" 6.0 f
   | _ -> Alcotest.fail "expected float");
  check_int "float compare" 1
    (ret_int "int main(){ float x; x = 0.5; return x < 1.0; }");
  check_int "f2i conversion" 3
    (ret_int "int main(){ float x; x = 3.7; return (int)x; }")

let test_control_flow () =
  check_int "if true" 1 (ret_int "int main(){ if (2 > 1) return 1; return 0; }");
  check_int "if else" 7
    (ret_int "int main(){ int x; if (0) x = 3; else x = 7; return x; }");
  check_int "while sum" 45
    (ret_int
       "int main(){ int s; int i; s = 0; i = 0; \
        while (i < 10) { s = s + i; i = i + 1; } return s; }");
  check_int "for sum" 45
    (ret_int
       "int main(){ int s; s = 0; for (int i = 0; i < 10; i++) s += i; \
        return s; }");
  check_int "break" 10
    (ret_int
       "int main(){ int s; s = 0; for (int i = 0; i < 100; i++) { \
        if (i == 5) break; s = s + i; } return s; }");
  check_int "continue" 25
    (ret_int
       "int main(){ int s; s = 0; for (int i = 0; i < 10; i++) { \
        if (i % 2 == 0) continue; s = s + i; } return s; }");
  check_int "nested loops" 100
    (ret_int
       "int main(){ int s; s = 0; \
        for (int i = 0; i < 10; i++) for (int j = 0; j < 10; j++) s++; \
        return s; }")

let test_globals_and_memory () =
  check_int "global rw" 5
    (ret_int "int g; int main(){ g = 5; return g; }");
  check_int "global array" 55
    (ret_int
       "int a[10]; int main(){ int s; \
        for (int i = 0; i < 10; i++) a[i] = i + 1; \
        s = 0; for (int i = 0; i < 10; i++) s += a[i]; return s; }");
  check_int "local array" 6
    (ret_int
       "int main(){ int a[3]; a[0]=1; a[1]=2; a[2]=3; \
        return a[0]+a[1]+a[2]; }");
  check_int "pointer deref" 42
    (ret_int "int main(){ int x; int* p; p = &x; *p = 42; return x; }");
  check_int "pointer to array elem" 9
    (ret_int
       "int a[4]; int main(){ int* p; p = &a[2]; *p = 9; return a[2]; }");
  check_int "malloc" 21
    (ret_int
       "int main(){ int* p; p = (int*)malloc(24); \
        p[0]=1; p[1]=2; p[2]=18; return p[0]+p[1]+p[2]; }")

let test_pointer_aliasing_semantics () =
  (* two pointers to the same cell must observe each other's stores *)
  check_int "aliased store visible" 7
    (ret_int
       "int main(){ int x; int* p; int* q; p = &x; q = &x; \
        *p = 3; *q = 7; return *p; }")

let test_functions () =
  check_int "call" 12
    (ret_int "int f(int x){ return x * 3; } int main(){ return f(4); }");
  check_int "recursion (fib)" 55
    (ret_int
       "int fib(int n){ if (n < 2) return n; return fib(n-1) + fib(n-2); } \
        int main(){ return fib(10); }");
  check_int "pointer arg writes caller" 99
    (ret_int
       "void set(int* p, int v){ *p = v; } \
        int main(){ int x; set(&x, 99); return x; }");
  check_int "local array by pointer" 30
    (ret_int
       "int sum(int* a, int n){ int s; s = 0; \
          for (int i = 0; i < n; i++) s += a[i]; return s; } \
        int main(){ int b[3]; b[0]=4; b[1]=10; b[2]=16; return sum(b, 3); }")

let test_output () =
  let r =
    run "int main(){ print_int(3); print_flt(2.5); print_int(-1); return 0; }"
  in
  check_str "output" "3\n2.5\n-1\n" r.Interp.output

let test_rnd_deterministic () =
  let out1 = (run "int main(){ seed(42); print_int(rnd(100)); print_int(rnd(100)); return 0; }").Interp.output in
  let out2 = (run "int main(){ seed(42); print_int(rnd(100)); print_int(rnd(100)); return 0; }").Interp.output in
  check_str "deterministic rng" out1 out2;
  let out3 = (run "int main(){ seed(43); print_int(rnd(1000000)); print_int(rnd(1000000)); return 0; }").Interp.output in
  check_bool "different seeds differ" true (out1 <> out3)

let test_runtime_errors () =
  let expect_error src =
    try
      ignore (Interp.run ~fuel:100_000 (Lower.compile src));
      Alcotest.fail "expected a runtime error"
    with Interp.Runtime_error _ | Memory.Fault _ -> ()
  in
  expect_error "int main(){ return 1 / 0; }";
  expect_error "int main(){ int* p; p = (int*)0; return *p; }";
  expect_error "int main(){ while (1) {} return 0; }"  (* fuel *)

let test_fuel_limit () =
  let p = Lower.compile "int main(){ int s; for (int i = 0; i < 1000000; i++) s++; return s; }" in
  (try
     ignore (Interp.run ~fuel:1000 p);
     Alcotest.fail "expected fuel exhaustion"
   with Interp.Runtime_error _ -> ())

let test_counters () =
  let r =
    run
      "int a[8]; int main(){ int s; s = 0; \
       for (int i = 0; i < 8; i++) s += a[i]; return s; }"
  in
  (* 8 iloads from a[i]; s and i are register resident *)
  check_int "mem loads" 8 r.Interp.counters.Interp.mem_loads

(* ---- LOC resolution ---- *)

let test_loc_resolution () =
  let p =
    Lower.compile
      "int g; int h[4]; \
       int main(){ int x; int* p; p = &x; *p = 1; g = 2; h[1] = 3; \
       int* q; q = (int*)malloc(16); q[0] = 4; return 0; }"
  in
  let locs = ref [] in
  let hooks = Interp.no_hooks () in
  let memr = ref None in
  hooks.Interp.on_memory <- (fun m -> memr := Some m);
  hooks.Interp.on_mem <-
    (fun ~site:_ ~addr ~is_store ->
      if is_store then
        match !memr with
        | Some m -> locs := Memory.loc_of_addr m addr :: !locs
        | None -> ());
  ignore (Interp.run ~hooks p);
  let names =
    List.rev_map
      (function
        | Some (Loc.Lvar v) -> Symtab.name p.Sir.syms v
        | Some (Loc.Lheap s) -> "heap@" ^ string_of_int s
        | None -> "?")
      !locs
  in
  (match names with
   | [ "x"; "g"; "h"; heap ] ->
     check_bool "heap loc named by alloc site" true
       (String.length heap > 5 && String.sub heap 0 5 = "heap@")
   | _ ->
     Alcotest.failf "unexpected store locs: %s" (String.concat "," names))

(* ---- alias profile ---- *)

let test_alias_profile () =
  let p =
    Lower.compile
      "int a[4]; int b[4]; \
       int main(){ int* p; \
       for (int i = 0; i < 8; i++) { \
         if (i % 2 == 0) p = &a[0]; else p = &b[0]; \
         *p = i; } \
       return 0; }"
  in
  let prof, _ = Profiler.profile p in
  (* find the istore site *)
  let site =
    Hashtbl.fold
      (fun s (si : Sir.site_info) acc ->
        if si.Sir.si_kind = Sir.Kistore then s else acc)
      p.Sir.sites (-1)
  in
  check_bool "istore site found" true (site >= 0);
  let locs = Profile.locs_at prof site in
  check_int "store touches two LOCs" 2 (Loc.Set.cardinal locs);
  check_int "store executed 8 times" 8 (Profile.ref_count prof site)

let test_edge_profile () =
  let p =
    Lower.compile
      "int main(){ int s; s = 0; \
       for (int i = 0; i < 10; i++) { if (i < 3) s += 2; else s += 1; } \
       return s; }"
  in
  let prof, r = Profiler.profile p in
  check_int "result" 13
    (match r.Interp.ret with Interp.Vint i -> i | _ -> -1);
  (* loop head executed 11 times: block frequencies were annotated *)
  let f = Sir.find_func p "main" in
  let max_freq =
    Vec.fold (fun acc (b : Sir.bb) -> max acc b.Sir.freq) 0. f.Sir.fblocks
  in
  check_bool "some block runs 10+ times" true (max_freq >= 10.);
  check_int "main entered once" 1 (Profile.entry_count prof ~func:"main")

let test_call_modref_profile () =
  let p =
    Lower.compile
      "int g; int h; \
       void touch(){ g = g + 1; } \
       int main(){ h = 1; touch(); return g; }"
  in
  let prof, _ = Profiler.profile p in
  let call_site =
    Hashtbl.fold
      (fun s (si : Sir.site_info) acc ->
        if si.Sir.si_kind = Sir.Kcall then s else acc)
      p.Sir.sites (-1)
  in
  let mods = Profile.call_mod_locs prof call_site in
  let refs = Profile.call_ref_locs prof call_site in
  let has_g set =
    Loc.Set.exists
      (function Loc.Lvar v -> Symtab.name p.Sir.syms v = "g" | _ -> false)
      set
  in
  check_bool "call mods g" true (has_g mods);
  check_bool "call refs g" true (has_g refs);
  let has_h set =
    Loc.Set.exists
      (function Loc.Lvar v -> Symtab.name p.Sir.syms v = "h" | _ -> false)
      set
  in
  check_bool "call does not mod h" false (has_h mods)

(* ---- load reuse ---- *)

let test_load_reuse_detects_redundancy () =
  (* g loaded twice with no intervening store: second is a reuse *)
  let p =
    Lower.compile
      "int a[1]; int main(){ int s; s = 0; \
       for (int i = 0; i < 100; i++) { s += a[0]; s += a[0]; } return s; }"
  in
  let lr, _ = Load_reuse.analyse p in
  check_int "total loads" 200 lr.Load_reuse.total_loads;
  (* all but the very first load of a[0] see the same addr+value *)
  check_int "reused loads" 199 lr.Load_reuse.reused_loads

let test_load_reuse_store_changes_value () =
  (* value changes each iteration: consecutive loads differ *)
  let p =
    Lower.compile
      "int a[1]; int main(){ int s; s = 0; \
       for (int i = 0; i < 50; i++) { a[0] = i; s += a[0]; } return s; }"
  in
  let lr, _ = Load_reuse.analyse p in
  check_int "no spurious reuse" 0 lr.Load_reuse.reused_loads

let suite =
  [ Alcotest.test_case "arith" `Quick test_arith;
    Alcotest.test_case "float arith" `Quick test_float_arith;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "globals and memory" `Quick test_globals_and_memory;
    Alcotest.test_case "alias semantics" `Quick test_pointer_aliasing_semantics;
    Alcotest.test_case "functions" `Quick test_functions;
    Alcotest.test_case "output" `Quick test_output;
    Alcotest.test_case "deterministic rng" `Quick test_rnd_deterministic;
    Alcotest.test_case "runtime errors" `Quick test_runtime_errors;
    Alcotest.test_case "fuel limit" `Quick test_fuel_limit;
    Alcotest.test_case "counters" `Quick test_counters;
    Alcotest.test_case "loc resolution" `Quick test_loc_resolution;
    Alcotest.test_case "alias profile" `Quick test_alias_profile;
    Alcotest.test_case "edge profile" `Quick test_edge_profile;
    Alcotest.test_case "call mod/ref profile" `Quick test_call_modref_profile;
    Alcotest.test_case "load reuse redundancy" `Quick test_load_reuse_detects_redundancy;
    Alcotest.test_case "load reuse store kills" `Quick test_load_reuse_store_changes_value ]
