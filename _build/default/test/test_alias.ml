(* Tests for Steensgaard points-to, mod/ref summaries, and chi/mu lists. *)

open Spec_ir
open Spec_alias

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let compile = Lower.compile

let var_by_name p name =
  let found = ref (-1) in
  Symtab.iter
    (fun v -> if v.Symtab.vname = name && v.Symtab.vorig = v.Symtab.vid then
        found := v.Symtab.vid)
    p.Sir.syms;
  if !found < 0 then Alcotest.failf "no variable %s" name;
  !found

let sites_of_kind p kind =
  Hashtbl.fold
    (fun s (si : Sir.site_info) acc ->
      if si.Sir.si_kind = kind then s :: acc else acc)
    p.Sir.sites []
  |> List.sort compare

let test_separate_objects () =
  let p =
    compile
      "int a[8]; int b[8]; \
       int main(){ int* p; int* q; p = &a[0]; q = &b[0]; \
       *p = 1; *q = 2; return 0; }"
  in
  let sol = Steensgaard.solve p in
  let stores = sites_of_kind p Sir.Kistore in
  (match stores with
   | [ s1; s2 ] ->
     check_bool "p and q do not alias" false
       (Steensgaard.sites_may_alias sol s1 s2)
   | _ -> Alcotest.fail "expected two stores")

let test_unified_objects () =
  let p =
    compile
      "int a[8]; \
       int main(){ int* p; int* q; p = &a[0]; q = &a[3]; \
       *p = 1; *q = 2; return 0; }"
  in
  let sol = Steensgaard.solve p in
  let stores = sites_of_kind p Sir.Kistore in
  (match stores with
   | [ s1; s2 ] ->
     check_bool "p and q alias (same object)" true
       (Steensgaard.sites_may_alias sol s1 s2)
   | _ -> Alcotest.fail "expected two stores")

let test_assignment_unifies () =
  let p =
    compile
      "int a[8]; int b[8]; \
       int main(){ int* p; int* q; p = &a[0]; q = &b[0]; q = p; \
       *p = 1; *q = 2; return 0; }"
  in
  let sol = Steensgaard.solve p in
  let stores = sites_of_kind p Sir.Kistore in
  (match stores with
   | [ s1; s2 ] ->
     (* q = p unifies their targets: Steensgaard merges a and b *)
     check_bool "after q = p they may alias" true
       (Steensgaard.sites_may_alias sol s1 s2)
   | _ -> Alcotest.fail "expected two stores")

let test_class_members () =
  let p =
    compile
      "int g; int h; \
       int main(){ int* p; if (g) p = &g; else p = &h; *p = 3; return 0; }"
  in
  let sol = Steensgaard.solve p in
  let stores = sites_of_kind p Sir.Kistore in
  let s = List.hd stores in
  (match Steensgaard.class_of_site sol s with
   | Some cls ->
     let members = Steensgaard.vars_in_class sol cls in
     let names =
       List.map (fun v -> Symtab.name p.Sir.syms v) members
       |> List.sort compare
     in
     Alcotest.(check (list string)) "class members" [ "g"; "h" ] names
   | None -> Alcotest.fail "store site unclassified")

let test_heap_naming () =
  let p =
    compile
      "int main(){ int* p; int* q; \
       p = (int*)malloc(8); q = (int*)malloc(8); \
       *p = 1; *q = 2; return 0; }"
  in
  let sol = Steensgaard.solve p in
  let stores = sites_of_kind p Sir.Kistore in
  (match stores with
   | [ s1; s2 ] ->
     check_bool "distinct allocation sites do not alias" false
       (Steensgaard.sites_may_alias sol s1 s2);
     (match Steensgaard.class_of_site sol s1 with
      | Some cls ->
        check_int "heap class has one alloc site" 1
          (List.length (Steensgaard.heap_sites_in_class sol cls))
      | None -> Alcotest.fail "unclassified")
   | _ -> Alcotest.fail "expected two stores")

let test_call_propagates_pointers () =
  let p =
    compile
      "int g; \
       void store(int* p, int v){ *p = v; } \
       int main(){ store(&g, 5); return g; }"
  in
  let sol = Steensgaard.solve p in
  let stores = sites_of_kind p Sir.Kistore in
  let s = List.hd stores in
  (match Steensgaard.class_of_site sol s with
   | Some cls ->
     let names =
       List.map (fun v -> Symtab.name p.Sir.syms v)
         (Steensgaard.vars_in_class sol cls)
     in
     check_bool "store in callee reaches g" true (List.mem "g" names)
   | None -> Alcotest.fail "unclassified")

let test_return_propagates_pointers () =
  let p =
    compile
      "int g; \
       int* get(){ return &g; } \
       int main(){ int* p; p = get(); *p = 1; return g; }"
  in
  let sol = Steensgaard.solve p in
  let stores = sites_of_kind p Sir.Kistore in
  (match Steensgaard.class_of_site sol (List.hd stores) with
   | Some cls ->
     let names =
       List.map (fun v -> Symtab.name p.Sir.syms v)
         (Steensgaard.vars_in_class sol cls)
     in
     check_bool "returned pointer reaches g" true (List.mem "g" names)
   | None -> Alcotest.fail "unclassified")

(* ---- TBAA / chi-mu lists ---- *)

let test_chi_lists_on_istore () =
  let p =
    compile
      "int g; int h; \
       int main(){ int* p; if (g) p = &g; else p = &h; *p = 3; \
       return g + h; }"
  in
  let info = Annotate.run p in
  ignore info;
  let f = Sir.find_func p "main" in
  let istore =
    let found = ref None in
    Vec.iter
      (fun (b : Sir.bb) ->
        List.iter
          (fun s ->
            match s.Sir.kind with
            | Sir.Istr _ -> found := Some s
            | _ -> ())
          b.Sir.stmts)
      f.Sir.fblocks;
    Option.get !found
  in
  let chi_names =
    List.map (fun c -> Symtab.name p.Sir.syms c.Sir.chi_var) istore.Sir.chis
    |> List.sort compare
  in
  (* chi on g, h, and the virtual variable *)
  check_int "three chis" 3 (List.length chi_names);
  check_bool "chi on g" true (List.mem "g" chi_names);
  check_bool "chi on h" true (List.mem "h" chi_names)

let test_tbaa_filters_incompatible () =
  let p =
    compile
      "int gi; float gf; \
       int main(){ int* p; float* q; p = &gi; q = &gf; \
       *q = 1.0; return *p; }"
  in
  let info = Annotate.run p in
  ignore info;
  let f = Sir.find_func p "main" in
  let istore =
    let found = ref None in
    Vec.iter
      (fun (b : Sir.bb) ->
        List.iter
          (fun s ->
            match s.Sir.kind with Sir.Istr _ -> found := Some s | _ -> ())
          b.Sir.stmts)
      f.Sir.fblocks;
    Option.get !found
  in
  (* float store cannot alias int variable gi even if classes merged *)
  let chi_names =
    List.map (fun c -> Symtab.name p.Sir.syms c.Sir.chi_var) istore.Sir.chis
  in
  check_bool "no chi on gi (type-based)" false (List.mem "gi" chi_names)

let test_call_chi_from_modref () =
  let p =
    compile
      "int g; int h; \
       void bump(){ g = g + 1; } \
       int main(){ h = 2; bump(); return g + h; }"
  in
  let info = Annotate.run p in
  ignore info;
  let f = Sir.find_func p "main" in
  let call =
    let found = ref None in
    Vec.iter
      (fun (b : Sir.bb) ->
        List.iter
          (fun s ->
            match s.Sir.kind with
            | Sir.Call { callee = "bump"; _ } -> found := Some s
            | _ -> ())
          b.Sir.stmts)
      f.Sir.fblocks;
    Option.get !found
  in
  let chi_names =
    List.map (fun c -> Symtab.name p.Sir.syms c.Sir.chi_var) call.Sir.chis
  in
  let mu_names =
    List.map (fun m -> Symtab.name p.Sir.syms m.Sir.mu_var) call.Sir.mus
  in
  check_bool "call chis g" true (List.mem "g" chi_names);
  check_bool "call refs g" true (List.mem "g" mu_names);
  check_bool "call does not chi h" false (List.mem "h" chi_names)

let test_modref_transitive () =
  let p =
    compile
      "int g; \
       void inner(){ g = 1; } \
       void outer(){ inner(); } \
       int main(){ outer(); return g; }"
  in
  let sol = Steensgaard.solve p in
  let mr = Modref.compute p sol in
  let s = Modref.get mr "outer" in
  check_bool "outer transitively mods g" true
    (List.mem (var_by_name p "g") s.Modref.mod_vars)

let test_mu_on_iload () =
  let p =
    compile
      "int g; int main(){ int* p; p = &g; return *p; }"
  in
  let info = Annotate.run p in
  ignore info;
  let f = Sir.find_func p "main" in
  (* terminator contains the iload: a trailing nop carries the mu list *)
  let mus = ref [] in
  Vec.iter
    (fun (b : Sir.bb) ->
      List.iter (fun s -> mus := !mus @ s.Sir.mus) b.Sir.stmts)
    f.Sir.fblocks;
  let mu_names = List.map (fun m -> Symtab.name p.Sir.syms m.Sir.mu_var) !mus in
  check_bool "mu on g" true (List.mem "g" mu_names)

let suite =
  [ Alcotest.test_case "separate objects" `Quick test_separate_objects;
    Alcotest.test_case "same object" `Quick test_unified_objects;
    Alcotest.test_case "assignment unifies" `Quick test_assignment_unifies;
    Alcotest.test_case "class members" `Quick test_class_members;
    Alcotest.test_case "heap naming" `Quick test_heap_naming;
    Alcotest.test_case "call propagates" `Quick test_call_propagates_pointers;
    Alcotest.test_case "return propagates" `Quick test_return_propagates_pointers;
    Alcotest.test_case "istore chi list" `Quick test_chi_lists_on_istore;
    Alcotest.test_case "tbaa filters" `Quick test_tbaa_filters_incompatible;
    Alcotest.test_case "call chi from modref" `Quick test_call_chi_from_modref;
    Alcotest.test_case "modref transitive" `Quick test_modref_transitive;
    Alcotest.test_case "mu on iload" `Quick test_mu_on_iload ]
