(* Tests for the flow-sensitive pointer refinement (Figure 4's last
   stage) and the alias-likeliness threshold. *)

open Spec_ir
open Spec_cfg
open Spec_driver

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let build_ssa src =
  let p = Lower.compile src in
  let _ = Spec_alias.Annotate.run p in
  Sir.iter_funcs
    (fun f -> ignore (Cfg_utils.split_critical_edges f : int))
    p;
  ignore (Spec_ssa.Build_ssa.build p);
  p

let test_resolves_address_of () =
  let p =
    build_ssa "int g; int main(){ int* q; q = &g; *q = 1; return *q; }"
  in
  let r = Spec_ssa.Refine.compute p in
  (* both the store and the load site resolve to g *)
  check_int "both sites refined" 2 (Hashtbl.length r);
  Hashtbl.iter
    (fun _ l ->
      match l with
      | Loc.Lvar v -> check_str "target is g" "g" (Symtab.name p.Sir.syms v)
      | Loc.Lheap _ -> Alcotest.fail "expected a variable target")
    r

let test_resolves_malloc () =
  let p =
    build_ssa
      "int main(){ int* q; q = (int*)malloc(16); q[1] = 5; return q[1]; }"
  in
  let r = Spec_ssa.Refine.compute p in
  check_bool "sites refined to the allocation site" true
    (Hashtbl.length r >= 2);
  Hashtbl.iter
    (fun _ l ->
      match l with
      | Loc.Lheap _ -> ()
      | Loc.Lvar _ -> Alcotest.fail "expected a heap target")
    r

let test_merge_not_resolved () =
  let p =
    build_ssa
      "int g; int h; \
       int main(){ int* q; if (rnd(2) == 0) q = &g; else q = &h; \
       *q = 1; return 0; }"
  in
  let r = Spec_ssa.Refine.compute p in
  check_int "phi-merged pointer is not definite" 0 (Hashtbl.length r)

let test_pointer_arith_resolved () =
  let p =
    build_ssa
      "int a[8]; int main(){ int* q; q = &a[2]; q = q + 3; *q = 1; \
       return a[5]; }"
  in
  let r = Spec_ssa.Refine.compute p in
  check_bool "offset pointer still resolves to a" true (Hashtbl.length r >= 1)

(* The precision payoff: a store through a refined pointer no longer
   kills loads of *other* class members, even in the nonspeculative
   baseline — no checks needed. *)
let test_refinement_sharpens_baseline () =
  let src =
    (* q and r may alias per Steensgaard (both point into {g,h}), but q is
       definitely &h here; loads of g across *q must survive in Base *)
    "int g; int h; \
     int main(){ int s; s = 0; g = 3; \
     int* q; q = &h; \
     int* r; if (rnd(2) == 5) r = &g; else r = &h; \
     *r = 9; \
     for (int i = 0; i < 50; i++) { s = s + g; *q = i; } \
     print_int(s); print_int(h); return 0; }"
  in
  let baseline = Spec_prof.Interp.run (Lower.compile src) in
  let prof = Pipeline.profile_of_source src in
  let res =
    Pipeline.compile_and_optimize ~edge_profile:(Some prof) src Pipeline.Base
  in
  let out = Spec_prof.Interp.run res.Pipeline.prog in
  check_str "output preserved" baseline.Spec_prof.Interp.output
    out.Spec_prof.Interp.output;
  (* the load of g is hoisted without any data speculation: no ld.c *)
  let marks = ref 0 and checks = ref 0 in
  Sir.iter_funcs
    (fun f ->
      Vec.iter
        (fun (b : Sir.bb) ->
          List.iter
            (fun (st : Sir.stmt) ->
              if st.Sir.mark <> Sir.Mnone then incr marks;
              if st.Sir.mark = Sir.Mchk then incr checks)
            b.Sir.stmts)
        f.Sir.fblocks)
    res.Pipeline.prog;
  check_int "no checks in the baseline" 0 !checks;
  check_bool "g's loop loads were removed" true
    (out.Spec_prof.Interp.counters.Spec_prof.Interp.mem_loads
     < baseline.Spec_prof.Interp.counters.Spec_prof.Interp.mem_loads / 2)

let test_refined_same_target_still_kills () =
  (* both sites definitely touch h: the store must still kill the load *)
  let src =
    "int h; \
     int main(){ int* q; q = &h; int x; int y; \
     x = *q; *q = 7; y = *q; print_int(x + y); return 0; }"
  in
  let r = Pipeline.compile_and_optimize src Pipeline.Spec_heuristic in
  let out = Spec_prof.Interp.run r.Pipeline.prog in
  check_str "store-forwarding semantics preserved" "7\n"
    out.Spec_prof.Interp.output

(* ---- threshold ---- *)

let test_threshold_gates_speculation () =
  let rows = Experiments.ablate_threshold ~alias_permille:30 [ 0.0; 0.2 ] in
  match rows with
  | [ (_, loads_strict, checks_strict, _, _);
      (_, loads_loose, checks_loose, misses_loose, _) ] ->
    check_int "strict threshold: no speculation" 0 checks_strict;
    check_bool "loose threshold speculates" true (checks_loose > 0);
    check_bool "loose threshold removes loads" true (loads_loose < loads_strict);
    check_bool "loose threshold mis-speculates a little" true
      (misses_loose > 0 && misses_loose * 10 < checks_loose)
  | _ -> Alcotest.fail "expected two rows"

let suite =
  [ Alcotest.test_case "resolve &x" `Quick test_resolves_address_of;
    Alcotest.test_case "resolve malloc" `Quick test_resolves_malloc;
    Alcotest.test_case "merge unresolved" `Quick test_merge_not_resolved;
    Alcotest.test_case "pointer arith resolved" `Quick test_pointer_arith_resolved;
    Alcotest.test_case "refinement sharpens baseline" `Quick test_refinement_sharpens_baseline;
    Alcotest.test_case "same target still kills" `Quick test_refined_same_target_still_kills;
    Alcotest.test_case "threshold gates speculation" `Quick test_threshold_gates_speculation ]
