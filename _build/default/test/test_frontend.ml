(* Tests for the mini-C frontend: lexer, parser, typed lowering. *)

open Spec_ir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let compile = Lower.compile

let test_lex_basic () =
  let toks = Lexer.tokenize "int x = 42; // comment\nfloat y;" in
  check_int "token count" 9 (List.length toks);
  match toks with
  | { tok = Lexer.Tkw "int"; line = 1 } :: { tok = Lexer.Tident "x"; _ } :: _ ->
    ()
  | _ -> Alcotest.fail "unexpected token stream"

let test_lex_floats () =
  let toks = Lexer.tokenize "1.5 2e3 0.25 7" in
  let values =
    List.filter_map
      (function
        | { Lexer.tok = Lexer.Tflt_lit f; _ } -> Some (`F f)
        | { Lexer.tok = Lexer.Tint_lit i; _ } -> Some (`I i)
        | _ -> None)
      toks
  in
  Alcotest.(check (list (of_pp Fmt.nop)))
    "literals" [ `F 1.5; `F 2000.; `F 0.25; `I 7 ] values

let test_lex_puncts () =
  let toks = Lexer.tokenize "a<=b==c&&d++ e+ +f" in
  let ps =
    List.filter_map
      (function { Lexer.tok = Lexer.Tpunct p; _ } -> Some p | _ -> None)
      toks
  in
  Alcotest.(check (list string)) "puncts" [ "<="; "=="; "&&"; "++"; "+"; "+" ] ps

let test_lex_comments () =
  let toks = Lexer.tokenize "a /* multi\nline */ b" in
  check_int "two idents + eof" 3 (List.length toks);
  (match List.nth toks 1 with
   | { Lexer.tok = Lexer.Tident "b"; line = 2 } -> ()
   | _ -> Alcotest.fail "comment handling broke line counting")

let test_lex_error () =
  Alcotest.check_raises "bad char" (Ast.Frontend_error (1, "unexpected character '$'"))
    (fun () -> ignore (Lexer.tokenize "$"))

let test_parse_precedence () =
  (* 1 + 2 * 3 parses as 1 + (2 * 3) *)
  let ast = Parser.parse "int f() { return 1 + 2 * 3; }" in
  match ast with
  | [ Ast.Dfunc (_, _, "f", [], [ Ast.Sreturn (_, Some e) ]) ] ->
    (match e with
     | Ast.Ebin (_, "+", Ast.Eint (_, 1), Ast.Ebin (_, "*", _, _)) -> ()
     | _ -> Alcotest.fail "wrong precedence")
  | _ -> Alcotest.fail "unexpected AST shape"

let test_parse_assoc () =
  (* 10 - 3 - 2 parses as (10 - 3) - 2 *)
  let ast = Parser.parse "int f() { return 10 - 3 - 2; }" in
  match ast with
  | [ Ast.Dfunc (_, _, _, _, [ Ast.Sreturn (_, Some e) ]) ] ->
    (match e with
     | Ast.Ebin (_, "-", Ast.Ebin (_, "-", _, _), Ast.Eint (_, 2)) -> ()
     | _ -> Alcotest.fail "wrong associativity")
  | _ -> Alcotest.fail "unexpected AST shape"

let test_parse_error_reports_line () =
  (try
     ignore (Parser.parse "int f() {\n  return 1 +; \n}");
     Alcotest.fail "expected parse error"
   with Ast.Frontend_error (line, _) -> check_int "error line" 2 line)

let test_lower_simple () =
  let p = compile "int g; int main() { g = 3; return g; }" in
  let f = Sir.find_func p "main" in
  check_int "one global" 1 (List.length p.Sir.globals);
  check_bool "global is memory resident" true
    (Symtab.is_mem p.Sir.syms (List.hd p.Sir.globals));
  check_int "single block" 1 (Sir.n_blocks f)

let test_lower_if_shape () =
  let p = compile "int main(){ int x; x = 1; if (x) { x = 2; } return x; }" in
  let f = Sir.find_func p "main" in
  (* entry, then, join *)
  check_int "three blocks" 3 (Sir.n_blocks f);
  let entry = Sir.block f 0 in
  (match entry.Sir.term with
   | Sir.Tcond (_, t, e) ->
     check_bool "distinct targets" true (t <> e)
   | _ -> Alcotest.fail "entry should end in a conditional")

let test_lower_while_shape () =
  let p =
    compile "int main(){ int i; i = 0; while (i < 10) { i = i + 1; } return i; }"
  in
  let f = Sir.find_func p "main" in
  Sir.recompute_preds f;
  (* entry -> head; head -> body|exit; body -> head *)
  check_int "four blocks" 4 (Sir.n_blocks f);
  let head = Sir.block f 1 in
  check_int "loop head has two preds" 2 (List.length head.Sir.preds)

let test_lower_for_with_break () =
  let p =
    compile
      "int main(){ int s; s = 0; \
       for (int i = 0; i < 10; i = i + 1) { \
         if (i == 5) break; \
         s = s + i; } \
       return s; }"
  in
  let f = Sir.find_func p "main" in
  Sir.recompute_preds f;
  (* the exit block must have >= 2 preds: normal exit + break *)
  let exits =
    List.filter
      (fun b ->
        match b.Sir.term with Sir.Tret _ -> true | _ -> false)
      (Vec.to_list f.Sir.fblocks)
  in
  check_int "single return block" 1 (List.length exits);
  check_bool "break reaches exit" true
    (List.length (List.hd exits).Sir.preds >= 2)

let test_lower_address_taken () =
  let p = compile "int main(){ int x; int* p; p = &x; *p = 4; return x; }" in
  let syms = p.Sir.syms in
  let x =
    let found = ref None in
    Symtab.iter (fun v -> if v.Symtab.vname = "x" then found := Some v) syms;
    Option.get !found
  in
  check_bool "x address taken" true x.Symtab.vaddr_taken;
  check_bool "x memory resident" true (Symtab.is_mem syms x.Symtab.vid)

let test_lower_array_decay () =
  let p = compile "int a[10]; int main(){ a[3] = 7; return a[3]; }" in
  let f = Sir.find_func p "main" in
  let entry = Sir.block f 0 in
  (match entry.Sir.stmts with
   | [ { Sir.kind = Sir.Istr (Types.Tint, Sir.Binop (Sir.Add, _, Sir.Lda _, _), _, _); _ } ] ->
     ()
   | _ -> Alcotest.fail "array store should lower to Istr(base + scaled idx)")

let test_lower_ptr_arith_scaled () =
  let p = compile "int main(int n){ int* p; p = (int*)malloc(80); p = p + 3; return 0; }" in
  let f = Sir.find_func p "main" in
  let entry = Sir.block f 0 in
  let found_scaled = ref false in
  List.iter
    (fun s ->
      List.iter
        (Sir.iter_subexprs (function
          | Sir.Binop (Sir.Add, _, _, Sir.Const (Sir.Cint 24)) ->
            found_scaled := true
          | _ -> ()))
        (Sir.stmt_exprs s.Sir.kind))
    entry.Sir.stmts;
  check_bool "p + 3 scales to +24 bytes" true !found_scaled

let test_lower_float_coercion () =
  let p = compile "float f; int main(){ f = 1; return 0; }" in
  let f = Sir.find_func p "main" in
  let entry = Sir.block f 0 in
  (match entry.Sir.stmts with
   | [ { Sir.kind = Sir.Stid (_, Sir.Unop (Sir.I2f, Types.Tflt, _)); _ } ] -> ()
   | _ -> Alcotest.fail "int->float coercion not inserted")

let test_lower_type_errors () =
  let expect_err src =
    try
      ignore (compile src);
      Alcotest.fail "expected a frontend error"
    with Ast.Frontend_error _ -> ()
  in
  expect_err "int main(){ int x; return *x; }";       (* deref non-pointer *)
  expect_err "int main(){ return y; }";                (* undefined var *)
  expect_err "int main(){ return foo(); }";            (* undefined fn *)
  expect_err "int main(){ print_int(1, 2); return 0; }"; (* arity *)
  expect_err "int a[4]; int main(){ a = 0; return 0; }"; (* assign array *)
  expect_err "void main(){ return 3; }"                (* void returns value *)

let test_lower_unreachable_pruned () =
  let p = compile "int main(){ return 1; int x; x = 2; return x; }" in
  let f = Sir.find_func p "main" in
  check_int "dead code pruned" 1 (Sir.n_blocks f)

let test_lower_sites_registered () =
  let p = compile "int main(int n){ int* p; p = (int*)malloc(8); *p = 1; return *p; }" in
  let stores =
    Hashtbl.fold
      (fun _ (si : Sir.site_info) acc ->
        if si.Sir.si_kind = Sir.Kistore then acc + 1 else acc)
      p.Sir.sites 0
  in
  let loads =
    Hashtbl.fold
      (fun _ (si : Sir.site_info) acc ->
        if si.Sir.si_kind = Sir.Kiload then acc + 1 else acc)
      p.Sir.sites 0
  in
  check_int "one istore site" 1 stores;
  check_int "one iload site" 1 loads

let test_pp_roundtrip_smoke () =
  let p =
    compile
      "int g; int main(){ int i; for (i = 0; i < 4; i = i + 1) g = g + i; return g; }"
  in
  let s = Pp.prog_to_string p in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "pp mentions main" true (contains s "func main");
  check_bool "pp mentions loop condition" true (contains s "if")

let suite =
  [ Alcotest.test_case "lex basic" `Quick test_lex_basic;
    Alcotest.test_case "lex floats" `Quick test_lex_floats;
    Alcotest.test_case "lex puncts" `Quick test_lex_puncts;
    Alcotest.test_case "lex comments" `Quick test_lex_comments;
    Alcotest.test_case "parse precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parse associativity" `Quick test_parse_assoc;
    Alcotest.test_case "parse error line" `Quick test_parse_error_reports_line;
    Alcotest.test_case "lower simple" `Quick test_lower_simple;
    Alcotest.test_case "lower if shape" `Quick test_lower_if_shape;
    Alcotest.test_case "lower while shape" `Quick test_lower_while_shape;
    Alcotest.test_case "lower for+break" `Quick test_lower_for_with_break;
    Alcotest.test_case "address taken" `Quick test_lower_address_taken;
    Alcotest.test_case "array decay" `Quick test_lower_array_decay;
    Alcotest.test_case "pointer arith scaling" `Quick test_lower_ptr_arith_scaled;
    Alcotest.test_case "float coercion" `Quick test_lower_float_coercion;
    Alcotest.test_case "type errors" `Quick test_lower_type_errors;
    Alcotest.test_case "unreachable pruned" `Quick test_lower_unreachable_pruned;
    Alcotest.test_case "sites registered" `Quick test_lower_sites_registered;
    Alcotest.test_case "pp smoke" `Quick test_pp_roundtrip_smoke ]
