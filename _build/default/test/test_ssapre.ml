(* Tests for speculative SSAPRE: the paper's worked examples as golden
   transformations, plus differential-execution correctness. *)

open Spec_ir
open Spec_driver

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let count_marks (p : Sir.prog) mark =
  let n = ref 0 in
  Sir.iter_funcs
    (fun f ->
      Vec.iter
        (fun (b : Sir.bb) ->
          List.iter
            (fun (s : Sir.stmt) -> if s.Sir.mark = mark then incr n)
            b.Sir.stmts)
        f.Sir.fblocks)
    p;
  !n

let count_iloads (p : Sir.prog) =
  let n = ref 0 in
  Sir.iter_funcs
    (fun f ->
      Vec.iter
        (fun (b : Sir.bb) ->
          let scan e =
            Sir.iter_subexprs
              (function Sir.Ilod _ -> incr n | _ -> ())
              e
          in
          List.iter
            (fun (s : Sir.stmt) -> List.iter scan (Sir.stmt_exprs s.Sir.kind))
            b.Sir.stmts;
          List.iter scan (Sir.term_exprs b.Sir.term))
        f.Sir.fblocks)
    p;
  !n

let run_prog p = Spec_prof.Interp.run p

(* The paper's Figure 2: redundancy elimination using data speculation.
   r31 = p; ... = *p; *q = ...; ... = *p
   With profiling/heuristics saying p and q unlikely aliased, the second
   load of *p becomes a check (ld.c) and the first an advanced load. *)
let fig2_src =
  "int a[4]; int b[4]; \
   int main(){ int* p; int* q; int x; int y; \
   p = &a[0]; q = &b[0]; \
   if (rnd(100) == 777) q = &a[0]; \
   x = *p; \
   *q = 5; \
   y = *p; \
   print_int(x + y); return 0; }"

let test_fig2_nonspec_keeps_load () =
  let r = Pipeline.compile_and_optimize fig2_src Pipeline.Base in
  check_int "no checks under nonspeculative PRE" 0 (count_marks r.Pipeline.prog Sir.Mchk)

let test_fig2_heuristic_inserts_check () =
  let r = Pipeline.compile_and_optimize fig2_src Pipeline.Spec_heuristic in
  check_bool "check load generated" true (count_marks r.Pipeline.prog Sir.Mchk >= 1);
  check_bool "advanced load flagged" true (count_marks r.Pipeline.prog Sir.Madv >= 1)

let test_fig2_profile_inserts_check () =
  let prof = Pipeline.profile_of_source fig2_src in
  let r =
    Pipeline.compile_and_optimize fig2_src (Pipeline.Spec_profile prof)
  in
  check_bool "check load generated from profile" true
    (count_marks r.Pipeline.prog Sir.Mchk >= 1)

let test_fig2_profile_alias_blocks_speculation () =
  (* same shape, but p and q always alias at runtime: the profile must
     flag the chi as strong, keeping the second load *)
  let src =
    "int a[4]; \
     int main(){ int* p; int* q; int x; int y; \
     p = &a[0]; q = &a[0]; \
     x = *p; *q = 5; y = *p; \
     print_int(x + y); return 0; }"
  in
  let prof = Pipeline.profile_of_source src in
  let r = Pipeline.compile_and_optimize src (Pipeline.Spec_profile prof) in
  check_int "no check when profile shows real aliasing" 0
    (count_marks r.Pipeline.prog Sir.Mchk)

let test_fig2_all_variants_same_output () =
  let baseline = run_prog (Lower.compile fig2_src) in
  let prof = Pipeline.profile_of_source fig2_src in
  List.iter
    (fun variant ->
      let r = Pipeline.compile_and_optimize fig2_src variant in
      let out = run_prog r.Pipeline.prog in
      check_str
        (Printf.sprintf "output idential under %s"
           (Pipeline.variant_name variant))
        baseline.Spec_prof.Interp.output out.Spec_prof.Interp.output)
    [ Pipeline.Noopt; Pipeline.Base; Pipeline.Spec_heuristic;
      Pipeline.Spec_profile prof ]

(* Mis-speculation correctness: p and q DO alias at runtime but the
   heuristic speculates they don't.  The check reload must recover. *)
let test_misspeculation_recovers () =
  let src =
    (* the aliasing assignment hides behind an always-taken but
       data-dependent branch, so flow-sensitive refinement cannot
       disambiguate it statically *)
    "int a[4]; int b[4]; \
     int main(){ int* p; int* q; int x; int y; \
     p = &a[0]; q = &b[0]; \
     if (rnd(10) < 100) q = &a[0]; \
     a[0] = 1; \
     x = *p; *q = 42; y = *p; \
     print_int(y); return 0; }"
  in
  let baseline = run_prog (Lower.compile src) in
  check_str "baseline sees the store" "42\n" baseline.Spec_prof.Interp.output;
  let r = Pipeline.compile_and_optimize src Pipeline.Spec_heuristic in
  check_bool "speculation did fire" true (count_marks r.Pipeline.prog Sir.Mchk >= 1);
  let out = run_prog r.Pipeline.prog in
  check_str "check recovers the clobbered value" "42\n"
    out.Spec_prof.Interp.output

(* Loop-invariant load: PRE hoists the load of g out of the loop even in
   the nonspeculative pipeline (no aliasing store inside). *)
let test_loop_invariant_hoist () =
  let src =
    "int g; \
     int main(){ int s; s = 0; g = 7; \
     for (int i = 0; i < 100; i++) { s = s + g; } \
     print_int(s); return 0; }"
  in
  (* hoisting out of a while loop requires control speculation (the loop
     may run zero times), which the paper's O3 baseline drives with an
     edge profile *)
  let prof = Pipeline.profile_of_source src in
  let noopt = Pipeline.compile_and_optimize src Pipeline.Noopt in
  let base =
    Pipeline.compile_and_optimize ~edge_profile:(Some prof) src Pipeline.Base
  in
  let loads_noopt = (run_prog noopt.Pipeline.prog).Spec_prof.Interp.counters.Spec_prof.Interp.mem_loads in
  let loads_base = (run_prog base.Pipeline.prog).Spec_prof.Interp.counters.Spec_prof.Interp.mem_loads in
  check_int "unoptimized loads g each iteration" 100 loads_noopt;
  check_bool "PRE hoists the loop-invariant load" true (loads_base <= 2);
  check_str "same output" (run_prog (Lower.compile src)).Spec_prof.Interp.output
    (run_prog base.Pipeline.prog).Spec_prof.Interp.output

(* Speculative loop-invariant load: an aliasing store in the loop blocks
   nonspeculative hoisting; the speculative pipeline hoists with checks. *)
let spec_loop_src =
  (* w may point to g (the never-taken branch) so the baseline alias
     analysis must assume the store kills g; at runtime it never does *)
  "int g; int h; \
   int main(){ int s; s = 0; g = 7; int* w; w = &h; \
   if (rnd(1000) == 999) w = &g; \
   for (int i = 0; i < 100; i++) { s = s + g; *w = i; } \
   print_int(s); print_int(h); return 0; }"

let test_speculative_hoist () =
  let prof = Pipeline.profile_of_source spec_loop_src in
  let base =
    Pipeline.compile_and_optimize ~edge_profile:(Some prof) spec_loop_src
      Pipeline.Base
  in
  let spec =
    Pipeline.compile_and_optimize ~edge_profile:(Some prof) spec_loop_src
      Pipeline.Spec_heuristic
  in
  let loads_base =
    (run_prog base.Pipeline.prog).Spec_prof.Interp.counters.Spec_prof.Interp.mem_loads
  in
  let spec_ctrs = (run_prog spec.Pipeline.prog).Spec_prof.Interp.counters in
  (* the interpreter's semantic ALAT makes successful checks free: they
     do not appear in [mem_loads] at all *)
  check_bool "base cannot remove the loads" true (loads_base >= 100);
  check_bool "speculation emits checks" true
    (spec_ctrs.Spec_prof.Interp.check_stmts >= 90);
  check_bool "speculative PRE removes real loads" true
    (spec_ctrs.Spec_prof.Interp.mem_loads < loads_base / 5);
  check_str "outputs agree"
    (run_prog (Lower.compile spec_loop_src)).Spec_prof.Interp.output
    (run_prog spec.Pipeline.prog).Spec_prof.Interp.output

(* Figure 5/6 shape: enhanced phi insertion exposes speculative
   redundancy across a conditional may-alias store. *)
let fig6_src =
  "int a[4]; int b[4]; \
   int main(){ int* p; int x; int y; \
   if (rnd(10) == 99) p = &a[0]; else p = &b[0]; \
   x = a[0]; \
   if (rnd(2) == 0) { *p = 1; } \
   *p = 2; \
   y = a[0]; \
   print_int(x + y); return 0; }"

let test_fig6_speculative_phi_insertion () =
  let base = Pipeline.compile_and_optimize fig6_src Pipeline.Base in
  let prof = Pipeline.profile_of_source fig6_src in
  let spec = Pipeline.compile_and_optimize fig6_src (Pipeline.Spec_profile prof) in
  (* profile shows p = &b: the stores never touch a[0]; the reload of
     a[0] becomes a check while the base keeps the full load *)
  check_int "base keeps both loads" 0 (count_marks base.Pipeline.prog Sir.Mchk);
  check_bool "profile speculation checks the reload" true
    (count_marks spec.Pipeline.prog Sir.Mchk >= 1);
  check_str "outputs agree"
    (run_prog (Lower.compile fig6_src)).Spec_prof.Interp.output
    (run_prog spec.Pipeline.prog).Spec_prof.Interp.output

(* Arithmetic PRE: redundant pure expression is computed once. *)
let test_arith_pre () =
  let src =
    "int main(){ int x; int y; int a; int b; \
     x = rnd(10); y = rnd(10); \
     a = x * y + 3; \
     b = x * y + 3; \
     print_int(a + b); return 0; }"
  in
  let r = Pipeline.compile_and_optimize src Pipeline.Base in
  (* after PRE the multiply appears exactly once *)
  let muls = ref 0 in
  Sir.iter_funcs
    (fun f ->
      Vec.iter
        (fun (b : Sir.bb) ->
          List.iter
            (fun (s : Sir.stmt) ->
              List.iter
                (Sir.iter_subexprs (function
                  | Sir.Binop (Sir.Mul, _, _, _) -> incr muls
                  | _ -> ()))
                (Sir.stmt_exprs s.Sir.kind))
            b.Sir.stmts)
        f.Sir.fblocks)
    r.Pipeline.prog;
  check_int "one multiply after PRE" 1 !muls;
  check_str "output preserved"
    (run_prog (Lower.compile src)).Spec_prof.Interp.output
    (run_prog r.Pipeline.prog).Spec_prof.Interp.output

(* Calls kill speculation under heuristic rule 3. *)
let test_call_blocks_heuristic_speculation () =
  let src =
    "int g; \
     void touch(){ g = g + 1; } \
     int main(){ int x; int y; \
     g = 5; x = g; touch(); y = g; \
     print_int(x + y); return 0; }"
  in
  let r = Pipeline.compile_and_optimize src Pipeline.Spec_heuristic in
  check_int "no speculation across the call" 0 (count_marks r.Pipeline.prog Sir.Mchk);
  check_str "output preserved"
    (run_prog (Lower.compile src)).Spec_prof.Interp.output
    (run_prog r.Pipeline.prog).Spec_prof.Interp.output

(* Profile-driven speculation across calls: callee touches only h, so
   loads of g survive the call speculatively. *)
let test_profile_speculates_across_call () =
  let src =
    "int g; int h; int u[4]; \
     void touch(int* p){ *p = *p + 1; } \
     int main(){ int x; int y; \
     g = 5; x = g; touch(&h); y = g; \
     print_int(x + y); return 0; }"
  in
  let prof = Pipeline.profile_of_source src in
  let r = Pipeline.compile_and_optimize src (Pipeline.Spec_profile prof) in
  let out = run_prog r.Pipeline.prog in
  check_str "output preserved" "10\n" out.Spec_prof.Interp.output

(* Differential execution over random pointer-heavy programs. *)
let random_ptr_prog : string QCheck.Gen.t =
  QCheck.Gen.(
    let* n_iters = int_range 3 12 in
    let* alias_pct = int_range 0 100 in
    let* stores = int_range 1 3 in
    let body =
      Printf.sprintf
        "if (rnd(100) < %d) q = &a[i %% 4]; else q = &b[i %% 4]; %s s += a[0] + a[i %% 4];"
        alias_pct
        (String.concat " "
           (List.init stores (fun k -> Printf.sprintf "*q = i + %d;" k)))
    in
    return
      (Printf.sprintf
         "int a[4]; int b[4]; \
          int main(){ int* q; int s; s = 0; q = &b[0]; \
          for (int i = 0; i < %d; i++) { %s } \
          print_int(s); print_int(a[0]+a[1]+a[2]+a[3]); \
          print_int(b[0]+b[1]+b[2]+b[3]); return 0; }"
         n_iters body))

let prop_differential =
  QCheck.Test.make ~count:60
    ~name:"all pipelines preserve observable behaviour"
    (QCheck.make ~print:Fun.id random_ptr_prog)
    (fun src ->
      let baseline = run_prog (Lower.compile src) in
      let prof = Pipeline.profile_of_source src in
      List.for_all
        (fun variant ->
          let r = Pipeline.compile_and_optimize src variant in
          let out = run_prog r.Pipeline.prog in
          out.Spec_prof.Interp.output = baseline.Spec_prof.Interp.output)
        [ Pipeline.Base; Pipeline.Spec_heuristic; Pipeline.Spec_profile prof ])

let suite =
  [ Alcotest.test_case "fig2 nonspec keeps load" `Quick test_fig2_nonspec_keeps_load;
    Alcotest.test_case "fig2 heuristic check" `Quick test_fig2_heuristic_inserts_check;
    Alcotest.test_case "fig2 profile check" `Quick test_fig2_profile_inserts_check;
    Alcotest.test_case "fig2 real alias blocks spec" `Quick test_fig2_profile_alias_blocks_speculation;
    Alcotest.test_case "fig2 variants agree" `Quick test_fig2_all_variants_same_output;
    Alcotest.test_case "misspeculation recovers" `Quick test_misspeculation_recovers;
    Alcotest.test_case "loop invariant hoist" `Quick test_loop_invariant_hoist;
    Alcotest.test_case "speculative hoist" `Quick test_speculative_hoist;
    Alcotest.test_case "fig6 phi insertion" `Quick test_fig6_speculative_phi_insertion;
    Alcotest.test_case "arith PRE" `Quick test_arith_pre;
    Alcotest.test_case "call blocks heuristic spec" `Quick test_call_blocks_heuristic_speculation;
    Alcotest.test_case "profile spec across call" `Quick test_profile_speculates_across_call;
    QCheck_alcotest.to_alcotest prop_differential ]
